//! The sweep server: HPO-as-a-service over a shared worker pool.
//!
//! A single long-lived [`SweepServer`] owns one `rcompss` runtime (and
//! therefore the whole worker pool) and runs **many concurrent sweeps from
//! many tenants** over it. Clients speak the same `rnet` wire protocol as
//! workers — the first frame on a fresh connection decides the role
//! ([`Frame::Hello`] ⇒ worker, [`Frame::ClientHello`] ⇒ sweep client) —
//! and drive sweeps with five client-facing frames:
//!
//! * [`Frame::SubmitSweep`] — tenant submits a named sweep (search-space
//!   JSON, algorithm, trial budget, seed). Answered with a
//!   [`Frame::SweepStatus`] ack carrying the assigned sweep id, or a
//!   [`Frame::SweepReject`] (admission control / bad request / quota).
//! * [`Frame::SweepStatus`] — point-in-time query; with `follow != 0` the
//!   connection also subscribes to the sweep's live event stream.
//! * [`Frame::LeaderboardChunk`] — streamed to subscribers after every
//!   collected trial.
//! * [`Frame::CancelSweep`] — cooperative abort: nothing further is
//!   submitted, in-flight trials drain normally, workers return to the
//!   pool.
//! * [`Frame::SweepDone`] — terminal notification with the final state.
//!
//! **Fair share.** Every trial submission passes through a fair gate:
//! a weighted round-robin over the tenants currently waiting to submit,
//! with a per-tenant token bucket (`rate`/`burst`) and an optional total
//! trial quota on top. The gate blocks inside the sweep's submission loop
//! (via [`SweepControl::with_gate`]), so a throttled tenant's sweep simply
//! pauses between waves while other tenants' trials flow — the shared
//! pool stays busy. Quota exhaustion ends the sweep cleanly after the
//! in-flight wave drains.
//!
//! **Admission control.** At most `max_active` sweeps run concurrently;
//! further submissions queue up to `max_queued` deep and are rejected
//! beyond that with [`REJECT_QUEUE_FULL`].
//!
//! **Parity.** A served sweep drives the exact same
//! [`HpoRunner::run_controlled`] loop as the standalone `hpo-run` binary
//! with the same options, objective and seed — with an open gate the two
//! produce bit-identical trial tables, and the integration tests assert
//! it. A server started with [`SweepServer::start_staged`] additionally
//! routes grid and random sweeps through the stage tree
//! ([`HpoRunner::run_staged`]): shared training prefixes run once, the
//! trial table stays bit-identical, and the sweep's done message carries
//! the "N epochs saved" banner.
//!
//! Per-tenant and per-sweep telemetry lands in the runtime's metrics
//! registry (`hposerver_sweeps_active`, `hposerver_sweeps_queued`,
//! `hposerver_sweeps_completed_total`, `hposerver_sweeps_rejected_total`,
//! `hposerver_tenant_throttled_total{tenant=…}`,
//! `hposerver_trial_latency_us{sweep=…}`) and exports through the usual
//! `/metrics` status endpoint.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rcompss::{connect_workers, Runtime, WorkerBootstrap};
use rnet::{
    read_frame, write_frame, Fill, Frame, FrameReader, Interest, LeaderRow, Poller, RecvBuf,
    SendBuf, Waker,
};

use crate::algo::bayes::BayesSearch;
use crate::algo::grid::GridSearch;
use crate::algo::random::RandomSearch;
use crate::algo::tpe::TpeSearch;
use crate::algo::Suggester;
use crate::dashboard::stage_banner;
use crate::experiment::{ExperimentOptions, Objective};
use crate::results::TrialResult;
use crate::runner::{materialize, HpoRunner, SweepControl};
use crate::space::SearchSpace;
use crate::stagetree::StageObjective;

/// Sweep accepted, waiting for a free run slot.
pub const SWEEP_QUEUED: u32 = 0;
/// Sweep is actively submitting and collecting trials.
pub const SWEEP_RUNNING: u32 = 1;
/// Sweep finished normally (including a clean quota halt — see the
/// `message` on [`Frame::SweepDone`]).
pub const SWEEP_DONE: u32 = 2;
/// Sweep aborted on a runtime submission error.
pub const SWEEP_FAILED: u32 = 3;
/// Sweep cancelled by a client; collected trials are complete results.
pub const SWEEP_CANCELLED: u32 = 4;

/// Human-readable name for a sweep state code.
pub fn state_name(state: u32) -> &'static str {
    match state {
        SWEEP_QUEUED => "queued",
        SWEEP_RUNNING => "running",
        SWEEP_DONE => "done",
        SWEEP_FAILED => "failed",
        SWEEP_CANCELLED => "cancelled",
        _ => "unknown",
    }
}

/// Is this state terminal (no further events will follow)?
pub fn is_terminal(state: u32) -> bool {
    state >= SWEEP_DONE
}

/// Reject code: the sweep queue is at `max_queued` — retry later.
pub const REJECT_QUEUE_FULL: u32 = 1;
/// Reject code: malformed request (no `ClientHello`, bad space JSON,
/// unknown algorithm, zero trials…). The message says which.
pub const REJECT_BAD_REQUEST: u32 = 2;
/// Reject code: the tenant's total trial quota is already spent.
pub const REJECT_QUOTA: u32 = 3;
/// Reject code: the server is still gathering its worker pool.
pub const REJECT_NOT_READY: u32 = 4;
/// Reject code: no sweep with that id.
pub const REJECT_UNKNOWN_SWEEP: u32 = 5;

/// Tuning knobs for a [`SweepServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Sweeps allowed to run concurrently; further admissions queue.
    pub max_active: usize,
    /// Queued sweeps beyond the active set before [`REJECT_QUEUE_FULL`].
    pub max_queued: usize,
    /// Per-tenant trial admissions per second (token-bucket refill rate).
    /// `0.0` disables rate limiting — the gate still round-robins.
    pub rate: f64,
    /// Token-bucket capacity: how many admissions a tenant may burst
    /// after idling. Ignored when `rate == 0.0`.
    pub burst: f64,
    /// Per-tenant total trial budget across all sweeps; `0` = unlimited.
    /// An exhausted tenant's running sweeps halt cleanly and further
    /// submissions get [`REJECT_QUOTA`].
    pub quota_trials: u64,
    /// Default wave size applied to sweeps that do not request one.
    pub wave: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_active: 4,
            max_queued: 16,
            rate: 0.0,
            burst: 8.0,
            quota_trials: 0,
            wave: None,
        }
    }
}

/// Build a suggester from its wire name — the vocabulary of
/// [`Frame::SubmitSweep`]'s `algo` field (`grid`, `random`, `tpe`,
/// `bayes`).
pub fn build_algo(
    algo: &str,
    space: &SearchSpace,
    trials: usize,
    seed: u64,
) -> Result<Box<dyn Suggester>, String> {
    match algo {
        "grid" => Ok(Box::new(GridSearch::new(space))),
        "random" => Ok(Box::new(RandomSearch::new(space, trials, seed))),
        "tpe" => Ok(Box::new(TpeSearch::new(space, trials, seed))),
        "bayes" => Ok(Box::new(BayesSearch::new(space, trials, seed))),
        other => Err(format!("unknown algorithm '{other}' (grid|random|tpe|bayes)")),
    }
}

/// How a [`SweepServer`] assembles its worker pool at startup.
#[derive(Debug, Clone, Default)]
pub struct PoolPlan {
    /// Worker addresses the server dials out to (`host:port`).
    pub dial: Vec<String>,
    /// Workers expected to dial *in* (started with `--dial` pointing at
    /// this server) before the pool is sealed.
    pub expect_dial_in: usize,
    /// Deadline for the whole gathering phase.
    pub timeout: Duration,
}

impl PoolPlan {
    /// Dial out to `addrs` with a `timeout`; expect no dial-ins.
    pub fn dial_out(addrs: &[String], timeout: Duration) -> PoolPlan {
        PoolPlan { dial: addrs.to_vec(), expect_dial_in: 0, timeout }
    }
}

/// Gather the worker pool on the server's listener: dial out to
/// `plan.dial`, then accept dial-ins until `plan.expect_dial_in` workers
/// have introduced themselves with a [`Frame::Hello`]. A client that
/// connects during gathering is answered with [`REJECT_NOT_READY`] and
/// closed. Returns the bootstraps to feed
/// [`Runtime::from_bootstraps`](rcompss::Runtime::from_bootstraps).
pub fn gather_workers(listener: &TcpListener, plan: &PoolPlan) -> io::Result<Vec<WorkerBootstrap>> {
    let mut boots = connect_workers(&plan.dial, plan.timeout)?;
    if plan.expect_dial_in == 0 {
        return Ok(boots);
    }
    let want = plan.dial.len() + plan.expect_dial_in;
    let deadline = Instant::now() + plan.timeout;
    listener.set_nonblocking(true)?;
    while boots.len() < want {
        match listener.accept() {
            Ok((stream, peer)) => {
                if let Some(boot) = adopt_dial_in(stream, peer) {
                    boots.push(boot);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("gathered {} of {want} workers before the deadline", boots.len()),
                    ));
                }
                thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(boots)
}

/// Read the first frame off a fresh connection and decide its role:
/// `Hello` becomes a worker bootstrap, anything else is turned away.
fn adopt_dial_in(stream: TcpStream, peer: SocketAddr) -> Option<WorkerBootstrap> {
    stream.set_nonblocking(false).ok()?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut reader = FrameReader::new();
    let mut stream = stream;
    match read_frame(&mut stream, &mut reader) {
        Ok(Some(Frame::Hello { name, cores, gpus, mem_gib })) => {
            let _ = stream.set_read_timeout(None);
            Some(WorkerBootstrap::from_hello(stream, peer.to_string(), name, cores, gpus, mem_gib))
        }
        Ok(Some(_)) => {
            let _ = write_frame(
                &mut stream,
                &Frame::SweepReject {
                    code: REJECT_NOT_READY,
                    message: "server is still gathering its worker pool".to_string(),
                },
            );
            None
        }
        _ => None,
    }
}

/// The fair-share admission gate: weighted round-robin across tenants
/// with a per-tenant token bucket and total-trial quota. One `acquire`
/// admits one trial submission; callers block until it is their turn
/// (or their sweep is cancelled, or their quota is gone).
struct FairGate {
    rate: f64,
    burst: f64,
    quota: u64,
    registry: Arc<runmetrics::MetricsRegistry>,
    state: Mutex<FairState>,
    cv: Condvar,
}

/// One tenant's lane through the gate.
struct TenantLane {
    tokens: f64,
    last_refill: Instant,
    /// Trials admitted so far, charged against the quota.
    spent: u64,
    /// Sweeps currently blocked in `acquire` for this tenant.
    waiting: usize,
    /// Times an `acquire` had to wait (one count per wait, not per
    /// retry); mirrored into `hposerver_tenant_throttled_total{tenant=…}`.
    throttled: u64,
    throttled_metric: runmetrics::Counter,
}

struct FairState {
    lanes: HashMap<String, TenantLane>,
    /// Round-robin order; the granted tenant rotates to the back.
    ring: VecDeque<String>,
}

/// Outcome of one [`FairGate::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admit {
    /// The tenant may submit one trial.
    Granted,
    /// The tenant's total trial quota is spent; the sweep should halt.
    Quota,
    /// The wait was abandoned (sweep cancelled / server stopping).
    Halted,
}

impl FairGate {
    fn new(cfg: &ServerConfig, registry: Arc<runmetrics::MetricsRegistry>) -> FairGate {
        FairGate {
            rate: cfg.rate,
            burst: cfg.burst.max(1.0),
            quota: cfg.quota_trials,
            registry,
            state: Mutex::new(FairState { lanes: HashMap::new(), ring: VecDeque::new() }),
            cv: Condvar::new(),
        }
    }

    fn ensure_lane(&self, st: &mut FairState, tenant: &str) {
        if !st.lanes.contains_key(tenant) {
            let metric = self.registry.counter(&runmetrics::labeled(
                "hposerver_tenant_throttled_total",
                "tenant",
                tenant,
            ));
            st.lanes.insert(
                tenant.to_string(),
                TenantLane {
                    tokens: self.burst,
                    last_refill: Instant::now(),
                    spent: 0,
                    waiting: 0,
                    throttled: 0,
                    throttled_metric: metric,
                },
            );
            st.ring.push_back(tenant.to_string());
        }
    }

    fn refill(&self, st: &mut FairState, now: Instant) {
        if self.rate <= 0.0 {
            return;
        }
        for lane in st.lanes.values_mut() {
            let dt = now.duration_since(lane.last_refill).as_secs_f64();
            lane.last_refill = now;
            lane.tokens = (lane.tokens + dt * self.rate).min(self.burst);
        }
    }

    /// The tenant whose turn it is: first lane in ring order that has a
    /// waiter, quota headroom and (when rate limiting) a whole token.
    /// Skipping token-less lanes keeps the gate work-conserving — one
    /// throttled tenant never stalls the others.
    fn next_grant(&self, st: &FairState) -> Option<String> {
        st.ring
            .iter()
            .find(|name| {
                let lane = &st.lanes[*name];
                lane.waiting > 0
                    && (self.quota == 0 || lane.spent < self.quota)
                    && (self.rate <= 0.0 || lane.tokens >= 1.0)
            })
            .cloned()
    }

    /// Block until this tenant wins an admission (or can never win one).
    /// `halt` is the sweep's cancel token: setting it abandons the wait.
    fn acquire(&self, tenant: &str, halt: &AtomicBool) -> Admit {
        let mut st = self.state.lock();
        self.ensure_lane(&mut st, tenant);
        st.lanes.get_mut(tenant).expect("lane just ensured").waiting += 1;
        let mut counted_wait = false;
        let verdict = loop {
            if halt.load(Ordering::Relaxed) {
                break Admit::Halted;
            }
            self.refill(&mut st, Instant::now());
            let me = &st.lanes[tenant];
            if self.quota > 0 && me.spent >= self.quota {
                break Admit::Quota;
            }
            if self.next_grant(&st).as_deref() == Some(tenant) {
                let lane = st.lanes.get_mut(tenant).expect("lane exists");
                if self.rate > 0.0 {
                    lane.tokens -= 1.0;
                }
                lane.spent += 1;
                if let Some(pos) = st.ring.iter().position(|n| n == tenant) {
                    let name = st.ring.remove(pos).expect("position in bounds");
                    st.ring.push_back(name);
                }
                break Admit::Granted;
            }
            if !counted_wait {
                counted_wait = true;
                let lane = st.lanes.get_mut(tenant).expect("lane exists");
                lane.throttled += 1;
                lane.throttled_metric.incr();
            }
            // Timed wait doubles as the token-refill clock under rate
            // limiting and keeps cancellation latency bounded.
            self.cv.wait_for(&mut st, Duration::from_millis(5));
        };
        st.lanes.get_mut(tenant).expect("lane exists").waiting -= 1;
        drop(st);
        self.cv.notify_all();
        verdict
    }

    fn throttled_total(&self, tenant: &str) -> u64 {
        self.state.lock().lanes.get(tenant).map_or(0, |l| l.throttled)
    }

    fn spent(&self, tenant: &str) -> u64 {
        self.state.lock().lanes.get(tenant).map_or(0, |l| l.spent)
    }
}

/// Everything a queued sweep needs to start running.
struct SweepSpec {
    space_json: String,
    algo: String,
    trials: u32,
    seed: u64,
    wave: u32,
}

/// Server-side record of one sweep, shared between the client plane and
/// the sweep's driver thread.
struct Sweep {
    tenant: String,
    name: String,
    state: u32,
    total: u32,
    done: u32,
    failed: u32,
    best_acc: f64,
    best_label: String,
    /// Full leaderboard in completion order — replayed to late
    /// subscribers, streamed row-by-row to live ones.
    rows: Vec<LeaderRow>,
    control: SweepControl,
    /// Why the sweep halted early, if it did (quota message).
    halt_reason: Arc<Mutex<String>>,
    spec: Option<SweepSpec>,
    started: Option<Instant>,
    wall_us: u64,
    message: String,
}

struct ServeState {
    sweeps: HashMap<u64, Sweep>,
    queue: VecDeque<u64>,
    active: usize,
    next_id: u64,
    drivers: Vec<JoinHandle<()>>,
}

/// Handles for the server-level metric series, pre-registered so they
/// export at zero.
struct ServerMetrics {
    active: runmetrics::Gauge,
    queued: runmetrics::Gauge,
    completed: runmetrics::Counter,
    rejected: runmetrics::Counter,
}

impl ServerMetrics {
    fn new(reg: &runmetrics::MetricsRegistry) -> ServerMetrics {
        ServerMetrics {
            active: reg.gauge("hposerver_sweeps_active"),
            queued: reg.gauge("hposerver_sweeps_queued"),
            completed: reg.counter("hposerver_sweeps_completed_total"),
            rejected: reg.counter("hposerver_sweeps_rejected_total"),
        }
    }
}

struct ServerInner {
    rt: Runtime,
    objective: Objective,
    /// When set, grid and random sweeps run through the stage tree
    /// ([`HpoRunner::run_staged`]) — shared prefixes trained once, trial
    /// tables bit-identical to the naive loop. Workers in the pool must
    /// have registered [`crate::stagetree::stage_task_def`] for the same
    /// objective. History-driven algorithms (TPE, Bayes) always take the
    /// naive path: their suggestions depend on earlier outcomes, so the
    /// config set cannot be materialised up front.
    stage: Option<StageObjective>,
    opts: ExperimentOptions,
    cfg: ServerConfig,
    gate: Arc<FairGate>,
    state: Mutex<ServeState>,
    /// Sweep-thread → client-plane event mailbox: frames to fan out to
    /// the sweep's subscribers, paired with a waker kick.
    events: Mutex<VecDeque<(u64, Frame)>>,
    wake: Arc<Waker>,
    stop: AtomicBool,
    metrics: ServerMetrics,
}

impl ServerInner {
    fn emit(&self, sweep_id: u64, frame: Frame) {
        self.events.lock().push_back((sweep_id, frame));
        let _ = self.wake.wake();
    }

    fn refresh_gauges(&self, st: &ServeState) {
        self.metrics.active.set(st.active as f64);
        self.metrics.queued.set(st.queue.len() as f64);
    }

    fn status_frame(&self, sweep_id: u64, s: &Sweep) -> Frame {
        Frame::SweepStatus {
            sweep_id,
            state: s.state,
            done: s.done,
            failed: s.failed,
            total: s.total,
            best_acc: s.best_acc,
            best_label: s.best_label.clone(),
            throttled: self.gate.throttled_total(&s.tenant),
            follow: 0,
        }
    }

    fn done_frame(&self, sweep_id: u64, s: &Sweep) -> Frame {
        Frame::SweepDone {
            sweep_id,
            state: s.state,
            wall_us: s.wall_us,
            message: s.message.clone(),
        }
    }
}

/// Poll token of the client plane's self-pipe waker.
const WAKE_TOKEN: u64 = u64::MAX;
/// Poll token of the listening socket.
const LISTEN_TOKEN: u64 = u64::MAX - 1;

/// One connected sweep client on the nonblocking plane.
struct ClientConn {
    stream: TcpStream,
    token: u64,
    recv: RecvBuf,
    out: SendBuf,
    registered_write: bool,
    /// Set by `ClientHello`; required before any sweep verb.
    tenant: Option<String>,
    /// Sweep ids this connection streams events for.
    watching: HashSet<u64>,
}

/// A long-lived, multi-tenant HPO sweep server over one shared runtime.
///
/// Start one with [`SweepServer::start`]; it owns the runtime (and so the
/// worker pool) until dropped. The client plane runs on its own thread —
/// a readiness loop over the listener and every client connection — and
/// each admitted sweep drives [`HpoRunner::run_controlled`] on a thread
/// of its own, all sharing the one runtime.
pub struct SweepServer {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    plane: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for SweepServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl SweepServer {
    /// Take ownership of `rt` and serve sweeps on `listener`. The
    /// `objective` and `opts` apply to every sweep (the task definition
    /// must match what the pool's workers registered).
    pub fn start(
        listener: TcpListener,
        rt: Runtime,
        objective: Objective,
        opts: ExperimentOptions,
        cfg: ServerConfig,
    ) -> io::Result<SweepServer> {
        SweepServer::start_staged(listener, rt, objective, None, opts, cfg)
    }

    /// Like [`SweepServer::start`], but with an optional stage-tree
    /// objective: when `stage` is `Some`, grid and random sweeps share
    /// training prefixes across their configs (see [`crate::stagetree`])
    /// and report the epochs saved in the sweep's done message and the
    /// `hpo_stage_epochs_saved_total` / `hpo_prefix_forks_total` counters.
    pub fn start_staged(
        listener: TcpListener,
        rt: Runtime,
        objective: Objective,
        stage: Option<StageObjective>,
        opts: ExperimentOptions,
        cfg: ServerConfig,
    ) -> io::Result<SweepServer> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let poller = Poller::new().unwrap_or_else(|_| Poller::fallback());
        let wake = Arc::new(Waker::new(&poller, WAKE_TOKEN)?);
        poller.register(listener.as_raw_fd(), LISTEN_TOKEN, Interest::READ)?;
        let registry = rt.metrics();
        let gate = Arc::new(FairGate::new(&cfg, Arc::clone(&registry)));
        let metrics = ServerMetrics::new(&registry);
        let inner = Arc::new(ServerInner {
            rt,
            objective,
            stage,
            opts,
            cfg,
            gate,
            state: Mutex::new(ServeState {
                sweeps: HashMap::new(),
                queue: VecDeque::new(),
                active: 0,
                next_id: 1,
                drivers: Vec::new(),
            }),
            events: Mutex::new(VecDeque::new()),
            wake,
            stop: AtomicBool::new(false),
            metrics,
        });
        let loop_inner = Arc::clone(&inner);
        let plane = thread::Builder::new()
            .name("hpo-sweep-server".to_string())
            .spawn(move || serve_loop(loop_inner, poller, listener))?;
        Ok(SweepServer { inner, addr, plane: Some(plane) })
    }

    /// The address the client plane listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The owned runtime's metrics registry (feed this to a
    /// [`rnet::StatusServer`] for `/metrics`).
    pub fn metrics(&self) -> Arc<runmetrics::MetricsRegistry> {
        self.inner.rt.metrics()
    }

    /// Stop serving: cancel every live sweep, drain their in-flight
    /// trials, close all client connections and join every thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        {
            let st = self.inner.state.lock();
            for sweep in st.sweeps.values() {
                sweep.control.cancel();
            }
        }
        let _ = self.inner.wake.wake();
        if let Some(plane) = self.plane.take() {
            let _ = plane.join();
        }
        loop {
            let drivers: Vec<JoinHandle<()>> = {
                let mut st = self.inner.state.lock();
                st.drivers.drain(..).collect()
            };
            if drivers.is_empty() {
                break;
            }
            for d in drivers {
                let _ = d.join();
            }
        }
    }
}

impl Drop for SweepServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Start queued sweeps while run slots are free. Called from the client
/// plane on submit and from a finishing driver thread; a stopped server
/// starts nothing.
fn pump(inner: &Arc<ServerInner>) {
    let mut st = inner.state.lock();
    while st.active < inner.cfg.max_active && !inner.stop.load(Ordering::Relaxed) {
        let Some(id) = st.queue.pop_front() else { break };
        let Some(sweep) = st.sweeps.get_mut(&id) else { continue };
        if sweep.state != SWEEP_QUEUED {
            continue;
        }
        sweep.state = SWEEP_RUNNING;
        sweep.started = Some(Instant::now());
        st.active += 1;
        let driver_inner = Arc::clone(inner);
        let handle = thread::Builder::new()
            .name(format!("sweep-{id}"))
            .spawn(move || run_sweep(driver_inner, id))
            .expect("spawn sweep driver");
        st.drivers.push(handle);
    }
    inner.refresh_gauges(&st);
}

/// Drive one sweep to completion on its own thread, streaming every
/// collected trial to the client plane.
fn run_sweep(inner: Arc<ServerInner>, id: u64) {
    let (spec, control, halt_reason, sweep_name) = {
        let mut st = inner.state.lock();
        let sweep = st.sweeps.get_mut(&id).expect("sweep exists while running");
        (
            sweep.spec.take().expect("queued sweep has a spec"),
            sweep.control.clone(),
            Arc::clone(&sweep.halt_reason),
            sweep.name.clone(),
        )
    };
    // Space and algorithm were validated at admission; a failure here is
    // still reported, not unwound.
    let result =
        SearchSpace::from_json(&spec.space_json).map_err(|e| e.to_string()).and_then(|space| {
            build_algo(&spec.algo, &space, spec.trials as usize, spec.seed).map(|a| (space, a))
        });
    let (_space, mut algo) = match result {
        Ok(pair) => pair,
        Err(msg) => {
            finish_sweep(&inner, id, SWEEP_FAILED, msg);
            return;
        }
    };
    let mut opts = inner.opts.clone();
    if spec.wave > 0 {
        opts.wave_size = Some(spec.wave as usize);
    } else if let Some(w) = inner.cfg.wave {
        opts.wave_size = Some(w);
    }
    let runner = HpoRunner::new(opts);
    let latency = inner.rt.metrics().histogram(&runmetrics::labeled(
        "hposerver_trial_latency_us",
        "sweep",
        &sweep_name,
    ));
    let trial_inner = Arc::clone(&inner);
    let mut observer = |trial: &TrialResult| {
        latency.record(trial.task_us);
        on_trial(&trial_inner, id, trial);
    };
    // Grid and random sweeps go through the stage tree when the server
    // was started with a stage objective: the suggester is
    // history-independent, so the whole config set can be materialised
    // and planned up front. Everything else keeps the naive loop.
    let staged = matches!(spec.algo.as_str(), "grid" | "random");
    let outcome = match inner.stage.as_ref().filter(|_| staged) {
        Some(stage) => {
            let configs = materialize(algo.as_mut());
            runner
                .run_staged(&inner.rt, &spec.algo, &configs, stage, Some(&control), observer)
                .map(|(_, stats)| Some(stats))
        }
        None => runner
            .run_controlled(
                &inner.rt,
                algo.as_mut(),
                inner.objective.clone(),
                &control,
                &mut observer,
            )
            .map(|_| None),
    };
    let (state, message) = match outcome {
        Err(e) => (SWEEP_FAILED, format!("submission failed: {e}")),
        Ok(_) if control.is_cancelled() => (SWEEP_CANCELLED, "cancelled".to_string()),
        Ok(stats) => {
            let mut message = halt_reason.lock().clone();
            // Surface the savings banner in the done message so sweep
            // clients see "N epochs saved" without scraping /metrics.
            if let Some(banner) = stats.map(|s| stage_banner(&s)).filter(|b| !b.is_empty()) {
                message =
                    if message.is_empty() { banner } else { format!("{message} · {banner}") };
            }
            (SWEEP_DONE, message)
        }
    };
    finish_sweep(&inner, id, state, message);
}

/// Fold one collected trial into the sweep record and stream it out.
fn on_trial(inner: &Arc<ServerInner>, id: u64, trial: &TrialResult) {
    // The bare config label (accuracy travels in its own field), matching
    // the `config` column of `HpoReport::to_csv` so served and standalone
    // leaderboards diff clean.
    let row = LeaderRow {
        label: trial.config.label(),
        accuracy: trial.outcome.accuracy,
        epochs: trial.outcome.epochs_run,
        task_us: trial.task_us,
    };
    {
        let mut st = inner.state.lock();
        let Some(sweep) = st.sweeps.get_mut(&id) else { return };
        if trial.outcome.is_failed() {
            sweep.failed += 1;
        } else {
            sweep.done += 1;
            if trial.outcome.accuracy > sweep.best_acc || sweep.best_label.is_empty() {
                sweep.best_acc = trial.outcome.accuracy;
                sweep.best_label = row.label.clone();
            }
        }
        sweep.rows.push(row.clone());
    }
    inner.emit(id, Frame::LeaderboardChunk { sweep_id: id, rows: vec![row] });
}

/// Move a sweep to a terminal state, free its run slot, notify
/// subscribers and start whatever was queued behind it.
fn finish_sweep(inner: &Arc<ServerInner>, id: u64, state: u32, message: String) {
    let done = {
        let mut st = inner.state.lock();
        let sweep = st.sweeps.get_mut(&id).expect("sweep exists while finishing");
        sweep.wall_us = sweep.started.map_or(0, |t| t.elapsed().as_micros() as u64);
        sweep.state = state;
        sweep.message = message;
        st.active = st.active.saturating_sub(1);
        inner.metrics.completed.incr();
        let sweep = &st.sweeps[&id];
        let frame = inner.done_frame(id, sweep);
        inner.refresh_gauges(&st);
        frame
    };
    inner.emit(id, done);
    pump(inner);
}

/// The client plane: accept clients, decode their frames, answer, and
/// fan sweep events out to subscribers — all on one readiness loop.
fn serve_loop(inner: Arc<ServerInner>, poller: Poller, listener: TcpListener) {
    let mut conns: HashMap<u64, ClientConn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut events: Vec<rnet::Event> = Vec::new();
    while !inner.stop.load(Ordering::Relaxed) {
        if poller.wait(&mut events, Some(Duration::from_millis(200))).is_err() {
            break;
        }
        let mut dead: Vec<u64> = Vec::new();
        for ev in &events {
            match ev.token {
                WAKE_TOKEN => inner.wake.drain(),
                LISTEN_TOKEN => accept_clients(&poller, &listener, &mut conns, &mut next_token),
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        if ev.readable && !service_read(&inner, conn) {
                            dead.push(token);
                        }
                    }
                }
            }
        }
        // Deliver sweep-thread events to every subscribed connection.
        let pending: Vec<(u64, Frame)> = {
            let mut q = inner.events.lock();
            q.drain(..).collect()
        };
        for (sweep_id, frame) in &pending {
            for conn in conns.values_mut() {
                if conn.watching.contains(sweep_id) {
                    conn.out.push(frame);
                }
            }
        }
        for (token, conn) in conns.iter_mut() {
            if !flush_conn(&poller, conn) {
                dead.push(*token);
            }
        }
        for token in dead {
            if let Some(conn) = conns.remove(&token) {
                let _ = poller.deregister(conn.stream.as_raw_fd());
            }
        }
    }
    for (_, conn) in conns.drain() {
        let _ = poller.deregister(conn.stream.as_raw_fd());
    }
    let _ = poller.deregister(listener.as_raw_fd());
}

/// Accept every pending client connection and register it for reads.
fn accept_clients(
    poller: &Poller,
    listener: &TcpListener,
    conns: &mut HashMap<u64, ClientConn>,
    next_token: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if poller.register(stream.as_raw_fd(), token, Interest::READ).is_err() {
                    continue;
                }
                conns.insert(
                    token,
                    ClientConn {
                        stream,
                        token,
                        recv: RecvBuf::new(),
                        out: SendBuf::new(),
                        registered_write: false,
                        tenant: None,
                        watching: HashSet::new(),
                    },
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        }
    }
}

/// Drain readable bytes and handle every complete frame. `false` means
/// the connection is finished (EOF, protocol error, or a fatal verb).
fn service_read(inner: &Arc<ServerInner>, conn: &mut ClientConn) -> bool {
    loop {
        match conn.recv.fill_from(&mut conn.stream) {
            Ok(Fill::Bytes(_)) => loop {
                let owned = match conn.recv.next_frame() {
                    Ok(Some(frame)) => frame.to_owned(),
                    Ok(None) => break,
                    Err(_) => return false,
                };
                if !handle_frame(inner, conn, owned) {
                    return false;
                }
            },
            Ok(Fill::WouldBlock) => return true,
            Ok(Fill::Eof) | Err(_) => return false,
        }
    }
}

/// Flush a connection's backlog and keep its write interest in sync.
fn flush_conn(poller: &Poller, conn: &mut ClientConn) -> bool {
    if conn.out.is_empty() && !conn.registered_write {
        return true;
    }
    let drained = match conn.out.flush(&mut conn.stream) {
        Ok((_, drained)) => drained,
        Err(_) => return false,
    };
    let want_write = !drained;
    if want_write != conn.registered_write {
        let interest = if want_write { Interest::READ_WRITE } else { Interest::READ };
        if poller.modify(conn.stream.as_raw_fd(), conn.token, interest).is_ok() {
            conn.registered_write = want_write;
        }
    }
    true
}

/// Dispatch one decoded client frame. Returns `false` to close.
fn handle_frame(inner: &Arc<ServerInner>, conn: &mut ClientConn, frame: Frame) -> bool {
    match frame {
        Frame::ClientHello { tenant, proto: _ } => {
            conn.tenant = Some(tenant);
            true
        }
        Frame::SubmitSweep { name, space_json, algo, trials, seed, wave } => {
            handle_submit(inner, conn, name, space_json, algo, trials, seed, wave);
            true
        }
        Frame::SweepStatus { sweep_id, follow, .. } => {
            let st = inner.state.lock();
            match st.sweeps.get(&sweep_id) {
                None => conn.out.push(&Frame::SweepReject {
                    code: REJECT_UNKNOWN_SWEEP,
                    message: format!("no sweep with id {sweep_id}"),
                }),
                Some(sweep) => {
                    conn.out.push(&inner.status_frame(sweep_id, sweep));
                    if follow != 0 {
                        conn.watching.insert(sweep_id);
                        if !sweep.rows.is_empty() {
                            conn.out.push(&Frame::LeaderboardChunk {
                                sweep_id,
                                rows: sweep.rows.clone(),
                            });
                        }
                        if is_terminal(sweep.state) {
                            conn.out.push(&inner.done_frame(sweep_id, sweep));
                        }
                    }
                }
            }
            true
        }
        Frame::CancelSweep { sweep_id } => {
            handle_cancel(inner, conn, sweep_id);
            true
        }
        // A worker Hello after the pool was sealed, or any other worker
        // protocol frame on the client plane: turn it away.
        Frame::Hello { .. } => {
            conn.out.push(&Frame::SweepReject {
                code: REJECT_NOT_READY,
                message: "worker pool is sealed; restart the server to add workers".to_string(),
            });
            false
        }
        _ => false,
    }
}

/// Admission control for one `SubmitSweep`.
#[allow(clippy::too_many_arguments)]
fn handle_submit(
    inner: &Arc<ServerInner>,
    conn: &mut ClientConn,
    name: String,
    space_json: String,
    algo: String,
    trials: u32,
    seed: u64,
    wave: u32,
) {
    let reject = |conn: &mut ClientConn, code: u32, message: String| {
        inner.metrics.rejected.incr();
        conn.out.push(&Frame::SweepReject { code, message });
    };
    let Some(tenant) = conn.tenant.clone() else {
        reject(conn, REJECT_BAD_REQUEST, "ClientHello must precede SubmitSweep".to_string());
        return;
    };
    let space = match SearchSpace::from_json(&space_json) {
        Ok(s) => s,
        Err(e) => {
            reject(conn, REJECT_BAD_REQUEST, format!("bad search space: {e}"));
            return;
        }
    };
    if algo != "grid" && trials == 0 {
        reject(conn, REJECT_BAD_REQUEST, "trials must be > 0 for sampled algorithms".to_string());
        return;
    }
    if let Err(e) = build_algo(&algo, &space, trials.max(1) as usize, seed) {
        reject(conn, REJECT_BAD_REQUEST, e);
        return;
    }
    if inner.cfg.quota_trials > 0 && inner.gate.spent(&tenant) >= inner.cfg.quota_trials {
        reject(
            conn,
            REJECT_QUOTA,
            format!("tenant '{tenant}' has spent its {}-trial quota", inner.cfg.quota_trials),
        );
        return;
    }
    let total = match algo.as_str() {
        "grid" => space.grid_size().map_or(0, |n| n as u32),
        _ => trials,
    };
    let ack = {
        let mut st = inner.state.lock();
        // A submission that can start immediately never queues, so the
        // queue-depth bound only applies once the active slots are taken.
        if st.active >= inner.cfg.max_active && st.queue.len() >= inner.cfg.max_queued {
            drop(st);
            reject(
                conn,
                REJECT_QUEUE_FULL,
                format!("sweep queue is full ({} deep)", inner.cfg.max_queued),
            );
            return;
        }
        let id = st.next_id;
        st.next_id += 1;
        let control = SweepControl::new();
        let token = control.cancel_token();
        let halt_reason = Arc::new(Mutex::new(String::new()));
        let gate = Arc::clone(&inner.gate);
        let gate_tenant = tenant.clone();
        let gate_reason = Arc::clone(&halt_reason);
        let quota = inner.cfg.quota_trials;
        let control = control.with_gate(move || match gate.acquire(&gate_tenant, &token) {
            Admit::Granted => true,
            Admit::Quota => {
                *gate_reason.lock() =
                    format!("tenant '{gate_tenant}' spent its {quota}-trial quota");
                false
            }
            Admit::Halted => false,
        });
        st.sweeps.insert(
            id,
            Sweep {
                tenant: tenant.clone(),
                name,
                state: SWEEP_QUEUED,
                total,
                done: 0,
                failed: 0,
                best_acc: 0.0,
                best_label: String::new(),
                rows: Vec::new(),
                control,
                halt_reason,
                spec: Some(SweepSpec { space_json, algo, trials, seed, wave }),
                started: None,
                wall_us: 0,
                message: String::new(),
            },
        );
        st.queue.push_back(id);
        inner.refresh_gauges(&st);
        conn.watching.insert(id);
        inner.status_frame(id, &st.sweeps[&id])
    };
    conn.out.push(&ack);
    pump(inner);
}

/// Cancel a sweep: a queued one dies in place, a running one gets its
/// control flag set and finishes through the normal drain path.
fn handle_cancel(inner: &Arc<ServerInner>, conn: &mut ClientConn, sweep_id: u64) {
    let mut st = inner.state.lock();
    let Some(sweep) = st.sweeps.get_mut(&sweep_id) else {
        conn.out.push(&Frame::SweepReject {
            code: REJECT_UNKNOWN_SWEEP,
            message: format!("no sweep with id {sweep_id}"),
        });
        return;
    };
    conn.watching.insert(sweep_id);
    match sweep.state {
        SWEEP_QUEUED => {
            sweep.state = SWEEP_CANCELLED;
            sweep.message = "cancelled while queued".to_string();
            let status = inner.status_frame(sweep_id, sweep);
            let done = inner.done_frame(sweep_id, sweep);
            st.queue.retain(|id| *id != sweep_id);
            inner.metrics.completed.incr();
            inner.refresh_gauges(&st);
            conn.out.push(&status);
            drop(st);
            inner.emit(sweep_id, done);
        }
        SWEEP_RUNNING => {
            sweep.control.cancel();
            let status = inner.status_frame(sweep_id, sweep);
            conn.out.push(&status);
        }
        _ => {
            let status = inner.status_frame(sweep_id, sweep);
            let done = inner.done_frame(sweep_id, sweep);
            conn.out.push(&status);
            conn.out.push(&done);
        }
    }
}
