//! Stage-tree trial dedup: train shared config prefixes once, fork the
//! rest from snapshots.
//!
//! Two grid trials that differ only in *late-binding* hyperparameters —
//! total epochs, the LR-decay point — follow the **same training
//! trajectory** up to the first epoch where a differing parameter starts
//! to matter. This module exploits that: it partitions each [`Config`]
//! into an ordered *stage signature* (the params that steer training from
//! epoch 0 versus the ones that only bind later), builds a prefix tree
//! over the sweep's config set, trains each shared prefix exactly once as
//! a first-class runtime task, snapshots at every fork point via
//! [`TrainSnapshot`], and launches children that resume from the parent
//! snapshot instead of retraining.
//!
//! # The binding-epoch model
//!
//! Every recognised hyperparameter has an epoch at which it first
//! influences the trajectory:
//!
//! - `optimizer`, `batch_size`, `learning_rate`, `hidden`, `weight_decay`,
//!   `arch`, `conv*_channels` — **epoch 0**. They form the *base
//!   signature* ([`seed_label`]), which also drives the training seed.
//! - `lr_decay_every` + `lr_decay_factor` (step decay) — epoch
//!   `lr_decay_every`: [`tinyml::train::LrSchedule::lr_at`] returns the
//!   base rate for every earlier epoch, so the pair binds *jointly* at the
//!   first decay. A decay whose epoch is at or past `num_epochs` never
//!   fires and is pruned (the params are invisible).
//! - `num_epochs` — at its own value: it is the terminal event. **Except**
//!   under `lr_schedule=cosine`, where the cosine shape reads the total
//!   epoch count from epoch 0; cosine configs therefore keep `num_epochs`
//!   in their base signature and never share along the epoch axis
//!   (conservative, and exactly what bit-identity requires).
//!
//! # Bit-identity
//!
//! The headline guarantee: a deduped sweep's leaderboard is bit-identical
//! to the naive sweep's. Three facts combine to give it:
//!
//! 1. the training seed derives from the base signature (see
//!    [`crate::experiment::train_config_from`]), so every member of a
//!    shared prefix — and the naive run of each member — trains the same
//!    trajectory over the shared epochs;
//! 2. [`tinyml::train::train_segment`] chains are bit-identical to one
//!    uninterrupted run (snapshots carry weights, optimiser moments, the
//!    seed and history — the PR 5 machinery);
//! 3. non-cosine LR schedules are independent of the configured total, so
//!    a prefix trained under the representative config is exact for every
//!    member.
//!
//! Fork payloads travel through the runtime as ordinary task outputs, so
//! on the distributed backend they ride the content-addressed block plane:
//! a fork scheduled on a remote worker fetches the parent snapshot once
//! per node, by content hash, exactly like any other large value.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use rcompss::{TaskDef, TaskError, Value};
use tinyml::data::Dataset;
use tinyml::train::Checkpointing;
use tinyml::TrainSnapshot;

use crate::ckpt::trial_key;
use crate::experiment::{train_config_from, ExperimentOptions, TrialOutcome};
use crate::space::{Config, ConfigValue};

/// Task name of a stage segment (both ends of a distributed run register
/// the definition under this name, like `graph.experiment`).
pub const STAGE_TASK_NAME: &str = "graph.stage";

/// Whether `config` uses the cosine LR schedule — the one schedule whose
/// shape depends on the configured total epoch count, which forces
/// `num_epochs` into the base signature (no epoch-axis sharing).
pub fn is_cosine(config: &Config) -> bool {
    config.get_str("lr_schedule") == Some("cosine")
}

fn effective_epochs(config: &Config) -> u32 {
    config.get_int("num_epochs").unwrap_or(10).max(0) as u32
}

/// The *base signature* of a config: the `k=v` label of every parameter
/// that influences training from epoch 0, in key order. Late-binding
/// params are excluded: `num_epochs` (unless cosine — see [`is_cosine`])
/// and the step-decay pair, which either binds at its decay epoch or is
/// dead (`lr_decay_every` absent/non-positive, or at/past the trial's
/// end). Configs with equal base signatures share one training trajectory
/// over their common prefix — and one training seed.
pub fn seed_label(config: &Config) -> String {
    let cosine = is_cosine(config);
    config
        .iter()
        .filter(|(k, _)| match *k {
            "num_epochs" => cosine,
            "lr_decay_every" | "lr_decay_factor" => false,
            _ => true,
        })
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// What binds at a [`StageEvent`]'s epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A step-decay schedule starts steering the learning rate; from here
    /// on the `(every, factor)` pair shapes every later epoch. `factor`
    /// travels as raw bits so grouping is exact.
    Decay {
        /// `lr_decay_every` (== the event's epoch).
        every: u32,
        /// `lr_decay_factor` as `f32::to_bits`.
        factor_bits: u32,
    },
    /// The trial completes (its `num_epochs`, or the rung budget).
    End,
}

/// One binding event of a config's stage signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageEvent {
    /// Epoch (0-based) at which the event fires.
    pub epoch: u32,
    /// What binds there.
    pub kind: EventKind,
}

/// The epoch-ordered binding events of `config`: at most one step-decay
/// bind, then the terminal [`EventKind::End`]. `override_epochs` replaces
/// the config's own `num_epochs` (successive-halving rung budgets).
/// Events are strictly increasing and always end with `End`.
pub fn stage_events(config: &Config, override_epochs: Option<u32>) -> Vec<StageEvent> {
    let epochs = override_epochs.unwrap_or_else(|| effective_epochs(config));
    let mut events = Vec::new();
    if !is_cosine(config) {
        if let Some(every) = config.get_int("lr_decay_every") {
            if every > 0 && (every as u32) < epochs {
                let factor = config.get_float("lr_decay_factor").unwrap_or(0.5) as f32;
                events.push(StageEvent {
                    epoch: every as u32,
                    kind: EventKind::Decay { every: every as u32, factor_bits: factor.to_bits() },
                });
            }
        }
    }
    events.push(StageEvent { epoch: epochs, kind: EventKind::End });
    events
}

/// One node of the stage tree: train epochs `[start, end)` once, on
/// behalf of every member config below it. The segment resumes its
/// parent's fork snapshot (or trains from scratch at the root) and ends
/// with its own fork snapshot, which its children — and any trials that
/// terminate here — consume.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Index of this segment in [`StagePlan::segments`].
    pub id: usize,
    /// Parent segment (`None` for roots).
    pub parent: Option<usize>,
    /// Representative config the segment trains under. Any member works:
    /// all members share the base signature and every event bound so far,
    /// and non-cosine schedules ignore the configured total.
    pub rep: Config,
    /// First epoch of the segment (== parent's `end`, or 0).
    pub start: u32,
    /// One past the last epoch; the fork snapshot is taken here.
    pub end: u32,
    /// Effective total epochs for the representative (shapes the cosine
    /// schedule; inert otherwise). Always ≥ `end`.
    pub total_epochs: u32,
    /// Indices (into the planned config slice) of trials that complete at
    /// `end` — several, when duplicate trajectories collapse.
    pub trials: Vec<usize>,
}

/// A prefix tree over a sweep's config set, flattened in topological
/// order (parents before children) for submission.
#[derive(Debug, Clone, Default)]
pub struct StagePlan {
    /// Segments in submission order.
    pub segments: Vec<Segment>,
    /// Total epochs a naive sweep would train.
    pub naive_epochs: u64,
    /// Total epochs the deduped sweep trains (sum of segment lengths).
    pub staged_epochs: u64,
}

impl StagePlan {
    /// Build the stage tree over `configs`. `override_epochs` replaces
    /// every config's `num_epochs` (successive-halving rung budgets).
    pub fn build(configs: &[Config], override_epochs: Option<u32>) -> StagePlan {
        let events: Vec<Vec<StageEvent>> =
            configs.iter().map(|c| stage_events(c, override_epochs)).collect();
        let mut groups: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for (i, c) in configs.iter().enumerate() {
            groups.entry(seed_label(c)).or_default().push((i, 0));
        }
        let mut plan = StagePlan::default();
        for members in groups.into_values() {
            build_node(&mut plan.segments, configs, &events, members, 0, None);
        }
        plan.naive_epochs = events.iter().map(|e| e.last().unwrap().epoch as u64).sum();
        plan.staged_epochs = plan.segments.iter().map(|s| (s.end - s.start) as u64).sum();
        plan
    }

    /// Epochs the dedup avoids relative to the naive sweep.
    pub fn epochs_saved(&self) -> u64 {
        self.naive_epochs.saturating_sub(self.staged_epochs)
    }

    /// Number of segments that fork off a parent snapshot.
    pub fn forks(&self) -> usize {
        self.segments.iter().filter(|s| s.parent.is_some()).count()
    }
}

/// Sort key for the child groups hanging off a fork point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ForkKey {
    /// No event fires for these members at the fork epoch; they simply
    /// keep training past a sibling's divergence point.
    None,
    /// Members whose step decay binds at the fork epoch, grouped by the
    /// exact `(every, factor)` pair.
    Decay(u32, u32),
}

fn build_node(
    segments: &mut Vec<Segment>,
    configs: &[Config],
    events: &[Vec<StageEvent>],
    members: Vec<(usize, usize)>, // (config index, cursor into its events)
    start: u32,
    parent: Option<usize>,
) {
    let end = members.iter().map(|&(i, c)| events[i][c].epoch).min().expect("non-empty node");
    let rep = members[0].0;
    let id = segments.len();
    segments.push(Segment {
        id,
        parent,
        rep: configs[rep].clone(),
        start,
        end,
        total_epochs: events[rep].last().unwrap().epoch,
        trials: Vec::new(),
    });
    let mut children: BTreeMap<ForkKey, Vec<(usize, usize)>> = BTreeMap::new();
    for (i, c) in members {
        let ev = events[i][c];
        if ev.epoch > end {
            children.entry(ForkKey::None).or_default().push((i, c));
        } else {
            match ev.kind {
                EventKind::End => segments[id].trials.push(i),
                EventKind::Decay { every, factor_bits } => {
                    children
                        .entry(ForkKey::Decay(every, factor_bits))
                        .or_default()
                        .push((i, c + 1));
                }
            }
        }
    }
    for group in children.into_values() {
        build_node(segments, configs, events, group, end, Some(id));
    }
}

/// The value a stage task returns (and the root literal children of the
/// tree roots receive): an encoded [`TrainSnapshot`] plus the task-side
/// wall time. Registered on the wire as the `hpo.stage` codec, so on the
/// distributed backend fork payloads ship content-addressed through the
/// block plane like any other sizeable value.
#[derive(Debug, Clone, PartialEq)]
pub struct StagePayload {
    /// [`TrainSnapshot::encode`] bytes; empty at the root (train from
    /// scratch).
    pub snapshot: Vec<u8>,
    /// Task wall time in µs.
    pub task_us: u64,
}

impl StagePayload {
    /// The root parent: no snapshot, children train from scratch.
    pub fn root() -> StagePayload {
        StagePayload { snapshot: Vec::new(), task_us: 0 }
    }
}

/// What a stage task needs to train a segment — the staged counterpart of
/// the closure state inside `tinyml_objective`. Both the driver and every
/// distributed worker build one from the same dataset spec so the task
/// body is identical on both ends.
#[derive(Clone)]
pub struct StageObjective {
    /// The (shared) training dataset.
    pub data: Arc<Dataset>,
    /// Hidden-layer widths when the config doesn't say.
    pub hidden: Vec<usize>,
    /// Inject `arch=cnn` into configs that don't pin an architecture
    /// (mirrors the CLI's `--cnn` objective wrapper).
    pub default_arch_cnn: bool,
    /// Mid-segment snapshot cadence through the runtime's ambient
    /// snapshot channel (0 = off): a retried segment resumes its own
    /// partial work instead of its parent's fork. Keys derive from the
    /// segment identity via [`rcompss::snapshot::derive_key`].
    pub ckpt_every: u32,
}

impl StageObjective {
    /// Build with checkpointing off.
    pub fn new(data: Arc<Dataset>, hidden: Vec<usize>) -> StageObjective {
        StageObjective { data, hidden, default_arch_cnn: false, ckpt_every: 0 }
    }
}

impl std::fmt::Debug for StageObjective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageObjective")
            .field("hidden", &self.hidden)
            .field("default_arch_cnn", &self.default_arch_cnn)
            .field("ckpt_every", &self.ckpt_every)
            .finish()
    }
}

/// Reconstruct the trial outcome from a terminal segment's fork snapshot:
/// the accumulated history covers every epoch from 0, so the derived
/// outcome equals what `tinyml_objective` returns for the same config —
/// bit for bit.
pub fn outcome_from_snapshot(snap: &TrainSnapshot) -> TrialOutcome {
    TrialOutcome {
        accuracy: snap.history.final_val_accuracy(),
        epochs_run: snap.history.epochs_run() as u32,
        epoch_loss: snap.history.train_loss.clone(),
        epoch_accuracy: snap.history.val_accuracy.clone(),
        error: None,
    }
}

/// The stage-segment task definition both ends of a run agree on.
///
/// Inputs: `[Config, u32 until, u32 total_epochs, StagePayload parent]`;
/// returns one [`StagePayload`] holding the fork snapshot at `until`.
/// Like the experiment task, the body trains under the placement's core
/// grant. A retried attempt first checks the ambient snapshot channel for
/// its own mid-segment snapshot (cadence [`StageObjective::ckpt_every`])
/// before falling back to the parent fork.
pub fn stage_task_def(opts: &ExperimentOptions, stage: &StageObjective) -> TaskDef {
    let stage = stage.clone();
    TaskDef {
        name: STAGE_TASK_NAME.into(),
        constraint: opts.constraint,
        returns: 1,
        priority: false,
        body: Arc::new(move |ctx: &rcompss::TaskContext, inputs: &[Value]| {
            let config = inputs[0]
                .downcast_ref::<Config>()
                .ok_or_else(|| TaskError::new("stage input 0 must be a Config"))?;
            let until = inputs[1]
                .downcast_ref::<u32>()
                .copied()
                .ok_or_else(|| TaskError::new("stage input 1 must be u32 (until)"))?;
            let total = inputs[2]
                .downcast_ref::<u32>()
                .copied()
                .ok_or_else(|| TaskError::new("stage input 2 must be u32 (total epochs)"))?;
            let parent = inputs[3]
                .downcast_ref::<StagePayload>()
                .ok_or_else(|| TaskError::new("stage input 3 must be a StagePayload"))?;
            let t0 = Instant::now();
            let snap = tinyml::par::with_threads(ctx.parallelism(), || {
                run_segment(&stage, config, until, total, parent)
            })?;
            let payload =
                StagePayload { snapshot: snap.encode(), task_us: t0.elapsed().as_micros() as u64 };
            Ok(vec![Value::new(payload)])
        }),
        alternatives: Vec::new(),
    }
}

fn run_segment(
    stage: &StageObjective,
    config: &Config,
    until: u32,
    total: u32,
    parent: &StagePayload,
) -> Result<TrainSnapshot, TaskError> {
    let injected;
    let config = if stage.default_arch_cnn && config.get("arch").is_none() {
        injected = config.clone().with("arch", ConfigValue::Str("cnn".into()));
        &injected
    } else {
        config
    };
    let mut cfg = train_config_from(config, &stage.hidden)?;
    // `total` is the naive-equivalent epoch count: the config's own for
    // grid sweeps (a no-op here), the rung budget for successive halving
    // (the same override the naive objective applies).
    cfg.epochs = total.max(until);
    let parent_snap = if parent.snapshot.is_empty() {
        None
    } else {
        Some(
            TrainSnapshot::decode(&parent.snapshot)
                .ok_or_else(|| TaskError::new("corrupt parent stage snapshot"))?,
        )
    };
    let start = parent_snap.as_ref().map_or(0, |s| s.next_epoch);
    // Mid-segment recovery: the snapshot channel the checkpointing layer
    // already runs for whole trials, keyed per segment so siblings and
    // ancestors never collide. Only a snapshot from this very segment
    // (same seed, strictly inside (start, until]) is trusted.
    let key = rcompss::snapshot::derive_key(trial_key(config), u64::from(until));
    let resume = (stage.ckpt_every > 0)
        .then(|| {
            rcompss::snapshot::load(key)
                .and_then(|b| TrainSnapshot::decode(&b))
                .filter(|s| s.seed == cfg.seed && s.next_epoch > start && s.next_epoch <= until)
        })
        .flatten()
        .or(parent_snap);
    let mut sink = |snap: &TrainSnapshot| {
        rcompss::snapshot::save(key, &snap.encode());
    };
    let snap = tinyml::train_segment(
        &cfg,
        &stage.data,
        Checkpointing { every: stage.ckpt_every, resume, sink: Some(&mut sink) },
        until,
    );
    // The fork payload supersedes any mid-segment snapshot.
    rcompss::snapshot::discard(key);
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;

    fn cfg(entries: &[(&str, ConfigValue)]) -> Config {
        let mut c = Config::new();
        for (k, v) in entries {
            c.set(k, v.clone());
        }
        c
    }

    fn int(i: i64) -> ConfigValue {
        ConfigValue::Int(i)
    }

    fn s(v: &str) -> ConfigValue {
        ConfigValue::Str(v.into())
    }

    #[test]
    fn seed_label_drops_late_binding_params() {
        let a = cfg(&[("optimizer", s("Adam")), ("num_epochs", int(20)), ("batch_size", int(32))]);
        let b = cfg(&[("optimizer", s("Adam")), ("num_epochs", int(50)), ("batch_size", int(32))]);
        assert_eq!(seed_label(&a), seed_label(&b), "epochs are late-binding");
        assert_eq!(seed_label(&a), "batch_size=32,optimizer=Adam");
        let c = cfg(&[("optimizer", s("SGD")), ("num_epochs", int(20)), ("batch_size", int(32))]);
        assert_ne!(seed_label(&a), seed_label(&c), "optimizer binds at epoch 0");
        let d = a.clone().with("lr_decay_every", int(5)).with("lr_decay_factor", int(1));
        assert_eq!(seed_label(&a), seed_label(&d), "decay pair binds at its epoch, not 0");
    }

    #[test]
    fn cosine_keeps_num_epochs_in_the_base() {
        let a = cfg(&[("lr_schedule", s("cosine")), ("num_epochs", int(20))]);
        let b = cfg(&[("lr_schedule", s("cosine")), ("num_epochs", int(50))]);
        assert!(is_cosine(&a));
        assert_ne!(seed_label(&a), seed_label(&b), "cosine shape depends on the total");
    }

    #[test]
    fn events_prune_invisible_decays() {
        let live = cfg(&[("num_epochs", int(20)), ("lr_decay_every", int(5))]);
        let ev = stage_events(&live, None);
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].epoch, 5);
        assert!(matches!(ev[0].kind, EventKind::Decay { every: 5, .. }));
        assert_eq!(ev[1], StageEvent { epoch: 20, kind: EventKind::End });

        // decay at/past the end never fires
        let dead = cfg(&[("num_epochs", int(20)), ("lr_decay_every", int(20))]);
        assert_eq!(stage_events(&dead, None).len(), 1);
        // budget override can kill a decay too
        assert_eq!(stage_events(&live, Some(4)).len(), 1, "decay@5 invisible at budget 4");
        // cosine has no decay events even with the keys present
        let cos = live.clone().with("lr_schedule", s("cosine"));
        assert_eq!(stage_events(&cos, None).len(), 1);
    }

    fn grid_configs(space: &SearchSpace) -> Vec<Config> {
        let mut g = crate::algo::grid::GridSearch::new(space);
        let mut out = Vec::new();
        while let Some(c) = crate::algo::Suggester::suggest(&mut g, &[]) {
            out.push(c);
        }
        out
    }

    #[test]
    fn paper_grid_plan_shares_the_epoch_axis() {
        // 3 optimisers × 3 batch sizes = 9 chains; each chain trains 100
        // epochs instead of 20+50+100.
        let configs = grid_configs(&SearchSpace::paper_grid());
        let plan = StagePlan::build(&configs, None);
        assert_eq!(plan.segments.len(), 27, "one segment per epoch stop per chain");
        assert_eq!(plan.naive_epochs, 9 * 170);
        assert_eq!(plan.staged_epochs, 9 * 100);
        assert_eq!(plan.epochs_saved(), 9 * 70);
        assert_eq!(plan.forks(), 18, "two forks per chain");
        // every config appears exactly once as a trial
        let mut seen: Vec<usize> = plan.segments.iter().flat_map(|s| s.trials.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..27).collect::<Vec<_>>());
        // chains are well-formed: children start where parents end
        for seg in &plan.segments {
            assert!(seg.end >= seg.start);
            assert!(seg.total_epochs >= seg.end);
            if let Some(p) = seg.parent {
                assert_eq!(plan.segments[p].end, seg.start);
                assert!(p < seg.id, "topological order");
            } else {
                assert_eq!(seg.start, 0);
            }
        }
    }

    #[test]
    fn decay_factors_fork_at_the_decay_epoch() {
        let space = SearchSpace::new()
            .with("num_epochs", crate::space::ParamDomain::choice_ints(&[10]))
            .with("lr_decay_every", crate::space::ParamDomain::choice_ints(&[4]))
            .with(
                "lr_decay_factor",
                crate::space::ParamDomain::Choice(vec![
                    ConfigValue::Float(0.5),
                    ConfigValue::Float(0.25),
                ]),
            );
        let configs = grid_configs(&space);
        let plan = StagePlan::build(&configs, None);
        // shared [0,4), then one [4,10) child per factor
        assert_eq!(plan.segments.len(), 3);
        assert_eq!(plan.segments[0].end, 4);
        assert!(plan.segments[0].trials.is_empty());
        assert_eq!(plan.staged_epochs, 4 + 6 + 6);
        assert_eq!(plan.naive_epochs, 20);
    }

    #[test]
    fn cosine_configs_never_share_epochs() {
        let space = SearchSpace::new()
            .with("lr_schedule", crate::space::ParamDomain::choice_strs(&["cosine"]))
            .with("num_epochs", crate::space::ParamDomain::choice_ints(&[5, 10]));
        let plan = StagePlan::build(&grid_configs(&space), None);
        assert_eq!(plan.segments.len(), 2);
        assert!(plan.segments.iter().all(|s| s.parent.is_none()));
        assert_eq!(plan.epochs_saved(), 0);
    }

    #[test]
    fn budget_override_collapses_the_epoch_axis() {
        // A successive-halving rung evaluates everything at the same
        // budget, so configs differing only in num_epochs become duplicate
        // trajectories: one segment, two trials.
        let configs = vec![
            cfg(&[("optimizer", s("Adam")), ("num_epochs", int(20))]),
            cfg(&[("optimizer", s("Adam")), ("num_epochs", int(50))]),
        ];
        let plan = StagePlan::build(&configs, Some(3));
        assert_eq!(plan.segments.len(), 1);
        assert_eq!(plan.segments[0].trials, vec![0, 1]);
        assert_eq!(plan.naive_epochs, 6);
        assert_eq!(plan.staged_epochs, 3);
    }

    #[test]
    fn duplicate_trajectories_collapse_into_one_node() {
        // Dead decay params: invisible, so these two distinct configs
        // train identically and dedup to a single segment.
        let configs = vec![
            cfg(&[("num_epochs", int(5)), ("lr_decay_every", int(50))]),
            cfg(&[("num_epochs", int(5)), ("lr_decay_every", int(60))]),
        ];
        let plan = StagePlan::build(&configs, None);
        assert_eq!(plan.segments.len(), 1);
        assert_eq!(plan.segments[0].trials, vec![0, 1]);
        assert_eq!(plan.epochs_saved(), 5);
    }

    #[test]
    fn outcome_reconstruction_matches_objective_shape() {
        let snap = TrainSnapshot {
            seed: 1,
            epochs_total: 3,
            next_epoch: 3,
            params: vec![],
            opt: tinyml::optim::OptimizerState {
                kind: tinyml::OptimizerKind::Sgd,
                weight_decay: 0.0,
                t: 0,
                slots: vec![],
            },
            history: tinyml::History {
                train_loss: vec![1.0, 0.5, 0.2],
                val_accuracy: vec![0.3, 0.6, 0.9],
            },
        };
        let out = outcome_from_snapshot(&snap);
        assert_eq!(out.accuracy, 0.9);
        assert_eq!(out.epochs_run, 3);
        assert_eq!(out.epoch_loss, vec![1.0, 0.5, 0.2]);
        assert!(!out.is_failed());
    }

    #[test]
    fn stage_task_def_trains_a_segment_and_forks() {
        let data = Arc::new(Dataset::synthetic_mnist(300, 5));
        let stage = StageObjective::new(Arc::clone(&data), vec![16]);
        let def = stage_task_def(&ExperimentOptions::default(), &stage);
        assert_eq!(def.name.as_ref(), STAGE_TASK_NAME);
        let ctx = rcompss::TaskContext {
            task: rcompss::TaskId(1),
            attempt: 1,
            node: 0,
            cores: vec![0],
            gpus: vec![],
            peer_nodes: vec![],
            simulated: false,
        };
        let config = cfg(&[("optimizer", s("Adam")), ("num_epochs", int(4))]);
        // root segment [0,2)
        let inputs = vec![
            Value::new(config.clone()),
            Value::new(2u32),
            Value::new(4u32),
            Value::new(StagePayload::root()),
        ];
        let out = (def.body)(&ctx, &inputs).expect("segment trains");
        let fork = out[0].downcast_ref::<StagePayload>().unwrap().clone();
        let snap = TrainSnapshot::decode(&fork.snapshot).unwrap();
        assert_eq!(snap.next_epoch, 2);
        // child segment [2,4) resumes the fork; outcome equals the naive run
        let inputs =
            vec![Value::new(config.clone()), Value::new(4u32), Value::new(4u32), Value::new(fork)];
        let out = (def.body)(&ctx, &inputs).expect("child trains");
        let done = out[0].downcast_ref::<StagePayload>().unwrap();
        let staged = outcome_from_snapshot(&TrainSnapshot::decode(&done.snapshot).unwrap());
        let naive =
            crate::experiment::tinyml_objective(data, vec![16])(&config, None).expect("naive runs");
        assert_eq!(staged, naive, "chained segments must equal the naive trial bit-for-bit");
    }

    #[test]
    fn stage_task_rejects_bad_inputs_and_corrupt_parents() {
        let data = Arc::new(Dataset::synthetic_mnist(100, 5));
        let def =
            stage_task_def(&ExperimentOptions::default(), &StageObjective::new(data, vec![8]));
        let ctx = rcompss::TaskContext {
            task: rcompss::TaskId(1),
            attempt: 1,
            node: 0,
            cores: vec![0],
            gpus: vec![],
            peer_nodes: vec![],
            simulated: false,
        };
        let bad = vec![Value::new(7u32), Value::new(2u32), Value::new(2u32), Value::new(0u32)];
        assert!((def.body)(&ctx, &bad).is_err());
        let corrupt = vec![
            Value::new(Config::new()),
            Value::new(2u32),
            Value::new(10u32),
            Value::new(StagePayload { snapshot: vec![1, 2, 3], task_us: 0 }),
        ];
        let err = (def.body)(&ctx, &corrupt).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
    }
}
