//! Successive halving / Hyperband budget scheduling.
//!
//! An aggressive form of the early stopping the paper's intro lists among
//! the "essential features" of an ideal HPO tool: start many configurations
//! on a small epoch budget, keep the top `1/eta` fraction, multiply their
//! budget by `eta`, repeat. Hyperband runs several such brackets with
//! different aggressiveness to hedge against slow starters.
//!
//! The scheduling logic here is pure (no runtime dependency); the
//! [`crate::runner::HpoRunner::run_successive_halving`] method executes it
//! on rcompss.

/// One rung of a bracket: evaluate `n_configs` at `budget` epochs each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rung {
    /// Configurations evaluated at this rung.
    pub n_configs: usize,
    /// Epoch budget per configuration.
    pub budget: u32,
}

/// A successive-halving bracket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bracket {
    /// Rungs from cheapest to most expensive.
    pub rungs: Vec<Rung>,
    /// The halving factor.
    pub eta: u32,
}

impl Bracket {
    /// Build a bracket that starts with `n_configs` at `min_budget` epochs
    /// and halves by `eta` until `max_budget` is reached (budget capped at
    /// `max_budget`).
    ///
    /// # Panics
    /// Panics if `eta < 2`, `min_budget == 0`, or `max_budget < min_budget`.
    pub fn new(n_configs: usize, min_budget: u32, max_budget: u32, eta: u32) -> Self {
        assert!(eta >= 2, "eta must be ≥ 2");
        assert!(min_budget >= 1, "min_budget must be ≥ 1");
        assert!(max_budget >= min_budget, "max_budget < min_budget");
        let mut rungs = Vec::new();
        let mut n = n_configs;
        let mut b = min_budget;
        loop {
            rungs.push(Rung { n_configs: n.max(1), budget: b.min(max_budget) });
            if b >= max_budget || n <= 1 {
                break;
            }
            n /= eta as usize;
            b = b.saturating_mul(eta);
        }
        Bracket { rungs, eta }
    }

    /// Number of survivors promoted out of rung `i` (the size of rung
    /// `i + 1`, or 1 for the last rung).
    pub fn survivors_of(&self, rung: usize) -> usize {
        self.rungs.get(rung + 1).map_or(1, |r| r.n_configs)
    }

    /// Total training epochs spent by the bracket (work measure).
    pub fn total_epochs(&self) -> u64 {
        self.rungs.iter().map(|r| r.n_configs as u64 * r.budget as u64).sum()
    }

    /// Epochs rung `i` trains per config when promotion **resumes** the
    /// promoted trial from its previous-rung snapshot instead of
    /// retraining: the budget delta over the rung below (the full budget
    /// at rung 0). This is the ASHA-style execution mode of
    /// [`crate::runner::HpoRunner::run_successive_halving_staged`].
    pub fn resume_epochs(&self, rung: usize) -> u32 {
        let b = self.rungs[rung].budget;
        match rung {
            0 => b,
            i => b.saturating_sub(self.rungs[i - 1].budget),
        }
    }

    /// Total training epochs of the bracket under snapshot-resume
    /// promotion — the work [`Bracket::total_epochs`] shrinks to when no
    /// promoted trial repeats its own earlier epochs.
    pub fn total_epochs_resumed(&self) -> u64 {
        self.rungs
            .iter()
            .enumerate()
            .map(|(i, r)| r.n_configs as u64 * u64::from(self.resume_epochs(i)))
            .sum()
    }
}

/// The Hyperband schedule: a set of brackets trading breadth for depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hyperband {
    /// All brackets, most exploratory first.
    pub brackets: Vec<Bracket>,
}

impl Hyperband {
    /// Standard Hyperband over budgets `[1, max_budget]` with factor `eta`.
    pub fn new(max_budget: u32, eta: u32) -> Self {
        assert!(eta >= 2);
        assert!(max_budget >= 1);
        let s_max = (max_budget as f64).ln() / (eta as f64).ln();
        let s_max = s_max.floor() as u32;
        let mut brackets = Vec::new();
        for s in (0..=s_max).rev() {
            let n = (((s_max + 1) as f64 / (s + 1) as f64) * (eta as f64).powi(s as i32)).ceil()
                as usize;
            let b = max_budget / eta.pow(s);
            brackets.push(Bracket::new(n, b.max(1), max_budget, eta));
        }
        Hyperband { brackets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bracket_halves_configs_and_grows_budget() {
        let b = Bracket::new(27, 2, 50, 3);
        let shape: Vec<(usize, u32)> = b.rungs.iter().map(|r| (r.n_configs, r.budget)).collect();
        assert_eq!(shape, vec![(27, 2), (9, 6), (3, 18), (1, 50)]);
        assert_eq!(b.survivors_of(0), 9);
        assert_eq!(b.survivors_of(2), 1);
        assert_eq!(b.survivors_of(3), 1, "last rung promotes the single winner");
    }

    #[test]
    fn bracket_work_is_far_below_full_grid() {
        // 27 configs × 50 epochs = 1350 epoch-units for exhaustive search;
        // the bracket spends a fraction.
        let b = Bracket::new(27, 2, 50, 3);
        assert!(b.total_epochs() < 1350 / 3, "SH total {}", b.total_epochs());
    }

    #[test]
    fn resume_epochs_are_budget_deltas() {
        let b = Bracket::new(27, 2, 50, 3);
        // budgets 2, 6, 18, 50 → deltas 2, 4, 12, 32
        let deltas: Vec<u32> = (0..b.rungs.len()).map(|i| b.resume_epochs(i)).collect();
        assert_eq!(deltas, vec![2, 4, 12, 32]);
        // resumed work: every config's epochs are counted exactly once
        // along its deepest path — strictly less than retraining
        assert!(b.total_epochs_resumed() < b.total_epochs());
        assert_eq!(b.total_epochs_resumed(), 27 * 2 + 9 * 4 + 3 * 12 + 32);
        // the single winner still reaches the full max budget
        let along_winner: u64 = (0..b.rungs.len()).map(|i| u64::from(b.resume_epochs(i))).sum();
        assert_eq!(along_winner, 50);
    }

    #[test]
    fn single_config_bracket() {
        let b = Bracket::new(1, 10, 10, 2);
        assert_eq!(b.rungs, vec![Rung { n_configs: 1, budget: 10 }]);
    }

    #[test]
    fn budget_caps_at_max() {
        let b = Bracket::new(8, 30, 50, 2);
        assert!(b.rungs.iter().all(|r| r.budget <= 50));
        assert_eq!(b.rungs.last().unwrap().budget, 50);
    }

    #[test]
    #[should_panic(expected = "eta")]
    fn eta_one_rejected() {
        let _ = Bracket::new(4, 1, 8, 1);
    }

    #[test]
    fn hyperband_brackets_cover_breadth_and_depth() {
        let hb = Hyperband::new(81, 3);
        assert_eq!(hb.brackets.len(), 5, "s_max = 4");
        // first bracket is the most exploratory (most configs, tiny budget)
        let first = &hb.brackets[0];
        let last = hb.brackets.last().unwrap();
        assert!(first.rungs[0].n_configs > last.rungs[0].n_configs);
        assert!(first.rungs[0].budget < last.rungs[0].budget);
        // every bracket ends at (or below) max budget
        for b in &hb.brackets {
            assert!(b.rungs.last().unwrap().budget <= 81);
        }
    }

    #[test]
    fn hyperband_minimum_case() {
        let hb = Hyperband::new(1, 2);
        assert_eq!(hb.brackets.len(), 1);
        assert_eq!(hb.brackets[0].rungs.len(), 1);
    }
}
