//! Gaussian-process Bayesian optimisation.
//!
//! The paper's §2: "Bayesian optimisation is another approach that
//! essentially builds a surrogate model to approximate the ideal trained
//! model by using different hyperparameters. It's practical usage and
//! implementation is presented by Snoek et al." This module implements that
//! approach from scratch:
//!
//! * hyperparameters are embedded into `[0, 1]^d` (categoricals one-hot,
//!   ints/uniforms min-max scaled, log-uniforms scaled in log space);
//! * a Gaussian process with an RBF kernel (plus observation noise) is fit
//!   to the observed `(config, accuracy)` pairs via a hand-rolled Cholesky
//!   factorisation;
//! * the next config maximises the **UCB** acquisition `μ(x) + κ·σ(x)`
//!   over a pool of random candidates (the standard candidate-set
//!   approximation — exact acquisition optimisation needs a gradient
//!   optimiser the candidate pool replaces at these dimensionalities).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::algo::random::RandomSearch;
use crate::algo::Suggester;
use crate::results::TrialResult;
use crate::space::{Config, ParamDomain, SearchSpace};

/// GP-UCB Bayesian optimisation suggester.
#[derive(Debug, Clone)]
pub struct BayesSearch {
    space: SearchSpace,
    remaining: usize,
    rng: StdRng,
    /// Exploration weight κ in `μ + κσ` (default 1.5).
    pub kappa: f64,
    /// RBF kernel length scale in the embedded space (default 0.3).
    pub length_scale: f64,
    /// Observation noise variance added to the kernel diagonal.
    pub noise: f64,
    /// Random warm-up suggestions before the GP takes over.
    pub n_startup: usize,
    /// Candidate-pool size per suggestion.
    pub n_candidates: usize,
    issued: usize,
}

impl BayesSearch {
    /// Bayesian optimisation over `space` for `n_trials`, seeded.
    pub fn new(space: &SearchSpace, n_trials: usize, seed: u64) -> Self {
        BayesSearch {
            space: space.clone(),
            remaining: n_trials,
            rng: StdRng::seed_from_u64(seed),
            kappa: 1.5,
            length_scale: 0.3,
            noise: 1e-4,
            n_startup: 4,
            n_candidates: 64,
            issued: 0,
        }
    }

    /// Embed a config into `[0,1]^d`.
    fn embed(space: &SearchSpace, cfg: &Config) -> Vec<f64> {
        let mut x = Vec::new();
        for (name, domain) in space.params() {
            match domain {
                ParamDomain::Choice(vals) => {
                    // one-hot over the category list
                    let idx =
                        cfg.get(name).and_then(|v| vals.iter().position(|c| c == v)).unwrap_or(0);
                    for i in 0..vals.len() {
                        x.push(if i == idx { 1.0 } else { 0.0 });
                    }
                }
                ParamDomain::IntRange { min, max, .. } => {
                    let v = cfg.get_int(name).unwrap_or(*min) as f64;
                    let span = (*max - *min).max(1) as f64;
                    x.push((v - *min as f64) / span);
                }
                ParamDomain::Uniform { min, max } => {
                    let v = cfg.get_float(name).unwrap_or(*min);
                    x.push((v - min) / (max - min).max(f64::MIN_POSITIVE));
                }
                ParamDomain::LogUniform { min, max } => {
                    let v = cfg.get_float(name).unwrap_or(*min).max(f64::MIN_POSITIVE).ln();
                    let (lo, hi) = (min.ln(), max.ln());
                    x.push((v - lo) / (hi - lo).max(f64::MIN_POSITIVE));
                }
            }
        }
        x
    }

    fn rbf(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    /// Posterior `(mean, variance)` at each of `xs` given observations.
    fn posterior(&self, obs_x: &[Vec<f64>], obs_y: &[f64], xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        let n = obs_x.len();
        debug_assert_eq!(n, obs_y.len());
        // centre the targets so the GP prior mean 0 is reasonable
        let y_mean = obs_y.iter().sum::<f64>() / n as f64;
        let y: Vec<f64> = obs_y.iter().map(|v| v - y_mean).collect();

        // K + σ²I, Cholesky-factorised
        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                k[i * n + j] = self.rbf(&obs_x[i], &obs_x[j]);
            }
            k[i * n + i] += self.noise;
        }
        let l = cholesky(&k, n).expect("kernel matrix is PD by construction");
        let alpha = cholesky_solve(&l, n, &y);

        xs.iter()
            .map(|x| {
                let kstar: Vec<f64> = obs_x.iter().map(|o| self.rbf(o, x)).collect();
                let mean = y_mean + kstar.iter().zip(&alpha).map(|(a, b)| a * b).sum::<f64>();
                // v = L⁻¹ k*; var = k(x,x) - vᵀv
                let v = forward_sub(&l, n, &kstar);
                let var = (1.0 + self.noise - v.iter().map(|t| t * t).sum::<f64>()).max(0.0);
                (mean, var)
            })
            .collect()
    }
}

/// Dense lower-triangular Cholesky of an `n×n` SPD matrix (row-major).
/// Returns `None` if a pivot goes non-positive.
fn cholesky(a: &[f64], n: usize) -> Option<Vec<f64>> {
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solve `L y = b` (forward substitution).
fn forward_sub(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    y
}

/// Solve `L Lᵀ x = b` given the Cholesky factor.
fn cholesky_solve(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let y = forward_sub(l, n, b);
    // back substitution with Lᵀ
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

impl Suggester for BayesSearch {
    fn suggest(&mut self, history: &[TrialResult]) -> Option<Config> {
        if self.remaining == 0 {
            return None;
        }
        let sample_one = |rng: &mut StdRng, space: &SearchSpace| -> Option<Config> {
            let mut c = Config::new();
            for (name, domain) in space.params() {
                c.set(name, RandomSearch::sample_domain(rng, domain)?);
            }
            Some(c)
        };

        let usable: Vec<&TrialResult> = history.iter().filter(|t| !t.outcome.is_failed()).collect();
        let cfg = if self.issued < self.n_startup || usable.len() < 2 {
            sample_one(&mut self.rng, &self.space.clone())?
        } else {
            let space = self.space.clone();
            let obs_x: Vec<Vec<f64>> =
                usable.iter().map(|t| Self::embed(&space, &t.config)).collect();
            let obs_y: Vec<f64> = usable.iter().map(|t| t.outcome.accuracy).collect();
            let candidates: Vec<Config> =
                (0..self.n_candidates).filter_map(|_| sample_one(&mut self.rng, &space)).collect();
            if candidates.is_empty() {
                return None;
            }
            let xs: Vec<Vec<f64>> = candidates.iter().map(|c| Self::embed(&space, c)).collect();
            let post = self.posterior(&obs_x, &obs_y, &xs);
            let best = post
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    let ua = a.0 + self.kappa * a.1.sqrt();
                    let ub = b.0 + self.kappa * b.1.sqrt();
                    ua.total_cmp(&ub)
                })
                .map(|(i, _)| i)
                .expect("non-empty candidates");
            candidates.into_iter().nth(best).expect("index valid")
        };
        self.issued += 1;
        self.remaining -= 1;
        Some(cfg)
    }

    fn parallelism(&self) -> usize {
        4
    }

    fn name(&self) -> &'static str {
        "bayes-gp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TrialOutcome;
    use crate::space::ConfigValue;

    fn trial(cfg: Config, acc: f64) -> TrialResult {
        TrialResult { config: cfg, outcome: TrialOutcome::with_accuracy(acc), task_us: 0 }
    }

    #[test]
    fn cholesky_roundtrip() {
        // A = [[4,2],[2,3]] → L = [[2,0],[1,√2]]
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let l = cholesky(&a, 2).unwrap();
        assert!((l[0] - 2.0).abs() < 1e-12);
        assert!((l[2] - 1.0).abs() < 1e-12);
        assert!((l[3] - 2f64.sqrt()).abs() < 1e-12);
        // solve A x = b for b = [2, 5] → x = [-0.5, 2]
        let x = cholesky_solve(&l, 2, &[2.0, 5.0]);
        assert!((x[0] + 0.5).abs() < 1e-10, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_non_pd() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // indefinite
        assert!(cholesky(&a, 2).is_none());
    }

    #[test]
    fn posterior_interpolates_observations() {
        let space = SearchSpace::new().with("x", ParamDomain::Uniform { min: 0.0, max: 1.0 });
        let b = BayesSearch::new(&space, 10, 0);
        let obs_x = vec![vec![0.2], vec![0.8]];
        let obs_y = vec![0.3, 0.9];
        let post = b.posterior(&obs_x, &obs_y, &[vec![0.2], vec![0.8], vec![0.5]]);
        assert!((post[0].0 - 0.3).abs() < 0.05, "mean at obs ≈ target: {post:?}");
        assert!((post[1].0 - 0.9).abs() < 0.05);
        assert!(post[0].1 < post[2].1, "variance smaller at observations than between them");
    }

    #[test]
    fn embedding_shapes_and_ranges() {
        let space = SearchSpace::new()
            .with("opt", ParamDomain::choice_strs(&["a", "b", "c"]))
            .with("e", ParamDomain::IntRange { min: 10, max: 110, step: 50 })
            .with("lr", ParamDomain::LogUniform { min: 1e-4, max: 1e-1 });
        let cfg = Config::new()
            .with("opt", ConfigValue::Str("b".into()))
            .with("e", ConfigValue::Int(60))
            .with("lr", ConfigValue::Float(1e-2));
        let x = BayesSearch::embed(&space, &cfg);
        assert_eq!(x.len(), 3 + 1 + 1);
        assert_eq!(&x[..3], &[0.0, 1.0, 0.0], "one-hot of 'b'");
        assert!((x[3] - 0.5).abs() < 1e-9, "60 is mid-range of [10,110]");
        assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn stays_in_space_and_terminates() {
        let space = SearchSpace::paper_grid();
        let mut b = BayesSearch::new(&space, 20, 3);
        let mut hist = Vec::new();
        let mut n = 0;
        while let Some(cfg) = b.suggest(&hist) {
            assert!(space.contains(&cfg), "escaped: {}", cfg.label());
            let acc = if cfg.get_str("optimizer") == Some("Adam") { 0.9 } else { 0.4 };
            hist.push(trial(cfg, acc));
            n += 1;
        }
        assert_eq!(n, 20);
    }

    #[test]
    fn exploits_a_smooth_objective() {
        // accuracy peaks at lr = 1e-2 on a log axis
        let space = SearchSpace::new().with("lr", ParamDomain::LogUniform { min: 1e-5, max: 1e-1 });
        let f = |cfg: &Config| {
            let lr = cfg.get_float("lr").unwrap();
            (1.0 - (lr.log10() + 2.0).abs() / 4.0).max(0.0)
        };
        let mut b = BayesSearch::new(&space, 30, 11);
        let mut hist = Vec::new();
        while let Some(cfg) = b.suggest(&hist) {
            let acc = f(&cfg);
            hist.push(trial(cfg, acc));
        }
        let dist = |t: &TrialResult| (t.config.get_float("lr").unwrap().log10() + 2.0).abs();
        let early: f64 = hist[..8].iter().map(dist).sum::<f64>() / 8.0;
        let late: f64 = hist[22..].iter().map(dist).sum::<f64>() / 8.0;
        assert!(late < early, "GP should concentrate: early {early:.3} late {late:.3}");
        let best = hist.iter().map(|t| t.outcome.accuracy).fold(0.0, f64::max);
        assert!(best > 0.85, "found a good region: {best}");
    }

    #[test]
    fn ignores_failed_trials() {
        let space = SearchSpace::paper_grid();
        let mut b = BayesSearch::new(&space, 10, 5);
        b.n_startup = 0;
        let hist = vec![
            TrialResult {
                config: Config::new(),
                outcome: TrialOutcome::failed("x"),
                task_us: 0,
            };
            5
        ];
        // only failed history → still in random mode, must not panic
        assert!(b.suggest(&hist).is_some());
    }

    #[test]
    fn determinism() {
        let space = SearchSpace::paper_grid();
        let run = |seed| {
            let mut b = BayesSearch::new(&space, 10, seed);
            let mut hist = Vec::new();
            let mut labels = Vec::new();
            while let Some(c) = b.suggest(&hist) {
                labels.push(c.label());
                hist.push(trial(c, 0.5));
            }
            labels
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
