//! Search algorithms.
//!
//! The paper implements grid search and random search "to demonstrate the
//! usage" and promises, as future work, "a library that puts together all
//! key algorithms in HPO" (§7). This module delivers both: [`grid`] and
//! [`random`] are the paper's §4 algorithms; [`tpe`] (Tree-structured Parzen
//! Estimator, the Bergstra et al. algorithm the paper's §2 discusses) and
//! [`hyperband`] (successive halving) are the promised extensions.
//!
//! [`bayes`] adds the Gaussian-process approach of Snoek et al. that §2
//! surveys. Every algorithm implements [`Suggester`], which the
//! [`crate::runner::HpoRunner`] drives: it pulls up to
//! [`Suggester::parallelism`] suggestions, runs them as parallel rcompss
//! tasks, feeds results back, and repeats.

pub mod bayes;
pub mod grid;
pub mod hyperband;
pub mod random;
pub mod tpe;

use crate::results::TrialResult;
use crate::space::Config;

/// A source of hyperparameter configurations.
pub trait Suggester {
    /// Propose the next config given the results observed so far, or `None`
    /// when the algorithm is exhausted.
    fn suggest(&mut self, history: &[TrialResult]) -> Option<Config>;

    /// How many suggestions may be taken *between* result feedbacks.
    /// Grid/random are embarrassingly parallel (`usize::MAX`); model-based
    /// algorithms like TPE want small batches.
    fn parallelism(&self) -> usize {
        usize::MAX
    }

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;

    /// Any suggester must respect its space and terminate.
    fn drains<S: Suggester>(mut s: S, space: &SearchSpace, max: usize) -> usize {
        let mut n = 0;
        while let Some(cfg) = s.suggest(&[]) {
            assert!(space.contains(&cfg), "{} escaped the space: {}", s.name(), cfg.label());
            n += 1;
            assert!(n <= max, "{} never terminates", s.name());
        }
        n
    }

    #[test]
    fn all_algorithms_stay_in_space_and_terminate() {
        let space = SearchSpace::paper_grid();
        assert_eq!(drains(grid::GridSearch::new(&space), &space, 27), 27);
        assert_eq!(drains(random::RandomSearch::new(&space, 40, 7), &space, 40), 40);
        assert_eq!(drains(tpe::TpeSearch::new(&space, 15, 7), &space, 15), 15);
        assert_eq!(drains(bayes::BayesSearch::new(&space, 15, 7), &space, 15), 15);
    }
}
