//! Tree-structured Parzen Estimator (TPE).
//!
//! The model-based algorithm of Bergstra et al. (NIPS 2011) that the paper's
//! §2 surveys and its §7 earmarks for the follow-up library. TPE maximises
//! the objective by splitting past trials into a *good* set (top `gamma`
//! quantile by accuracy) and a *bad* set, modelling a density for each
//! (`l(x)` over good, `g(x)` over bad), then proposing the candidate that
//! maximises `l(x)/g(x)`:
//!
//! * categorical/discrete domains use add-one-smoothed category frequencies;
//! * continuous domains use Parzen windows (Gaussian kernel mixtures over
//!   the observed values, in log space for log-uniform domains);
//! * the first `n_startup` suggestions are plain random search (no model
//!   without data).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::algo::random::RandomSearch;
use crate::algo::Suggester;
use crate::results::TrialResult;
use crate::space::{Config, ConfigValue, ParamDomain, SearchSpace};

/// TPE suggester.
#[derive(Debug, Clone)]
pub struct TpeSearch {
    space: SearchSpace,
    remaining: usize,
    rng: StdRng,
    /// Fraction of history treated as "good" (default 0.25).
    pub gamma: f64,
    /// Candidates scored per suggestion (default 24).
    pub n_candidates: usize,
    /// Random-search warm-up trials (default 5).
    pub n_startup: usize,
    issued: usize,
}

impl TpeSearch {
    /// TPE over `space` for `n_trials` suggestions, seeded.
    pub fn new(space: &SearchSpace, n_trials: usize, seed: u64) -> Self {
        TpeSearch {
            space: space.clone(),
            remaining: n_trials,
            rng: StdRng::seed_from_u64(seed),
            gamma: 0.25,
            n_candidates: 24,
            n_startup: 5,
            issued: 0,
        }
    }

    /// Split history into (good, bad) by accuracy quantile.
    fn split<'a>(
        &self,
        history: &'a [TrialResult],
    ) -> (Vec<&'a TrialResult>, Vec<&'a TrialResult>) {
        let mut sorted: Vec<&TrialResult> = history.iter().collect();
        sorted.sort_by(|a, b| b.outcome.accuracy.total_cmp(&a.outcome.accuracy));
        let n_good = ((history.len() as f64 * self.gamma).ceil() as usize).clamp(1, history.len());
        let good = sorted[..n_good].to_vec();
        let bad = sorted[n_good..].to_vec();
        (good, bad)
    }

    /// Density of `value` under a categorical model built from `obs`.
    fn categorical_density(domain_size: usize, obs: &[&ConfigValue], value: &ConfigValue) -> f64 {
        let count = obs.iter().filter(|&&o| o == value).count();
        (count as f64 + 1.0) / (obs.len() as f64 + domain_size as f64)
    }

    /// Parzen (Gaussian-mixture) density at `x` from observations `obs`
    /// over a domain of width `width`.
    fn parzen_density(obs: &[f64], x: f64, width: f64) -> f64 {
        if obs.is_empty() {
            return 1.0 / width.max(f64::MIN_POSITIVE);
        }
        let bw = (width / (obs.len() as f64).sqrt()).max(width * 0.01).max(1e-12);
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * bw * obs.len() as f64);
        obs.iter().map(|&o| (-0.5 * ((x - o) / bw).powi(2)).exp()).sum::<f64>() * norm
    }

    /// Sample a value for `domain` from the model over `good` observations.
    fn sample_from_good(
        &mut self,
        name: &str,
        domain: &ParamDomain,
        good: &[&TrialResult],
    ) -> Option<ConfigValue> {
        // With probability proportional to prior, sometimes explore.
        if good.is_empty() || self.rng.gen_bool(0.2) {
            return RandomSearch::sample_domain(&mut self.rng, domain);
        }
        let pick = good[self.rng.gen_range(0..good.len())].config.get(name)?.clone();
        match domain {
            ParamDomain::Choice(_) | ParamDomain::IntRange { .. } => Some(pick),
            ParamDomain::Uniform { min, max } => {
                let x = pick.as_float()?;
                let bw = (max - min) / (good.len() as f64).sqrt();
                let jittered = x + bw * self.gauss();
                Some(ConfigValue::Float(jittered.clamp(*min, *max)))
            }
            ParamDomain::LogUniform { min, max } => {
                let x = pick.as_float()?.ln();
                let bw = (max.ln() - min.ln()) / (good.len() as f64).sqrt();
                let jittered = (x + bw * self.gauss()).exp();
                Some(ConfigValue::Float(jittered.clamp(*min, *max)))
            }
        }
    }

    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// log(l(cfg)/g(cfg)) summed over parameters.
    fn score(&self, cfg: &Config, good: &[&TrialResult], bad: &[&TrialResult]) -> f64 {
        let mut total = 0.0;
        for (name, domain) in self.space.params() {
            let Some(v) = cfg.get(name) else { continue };
            let goods: Vec<&ConfigValue> = good.iter().filter_map(|t| t.config.get(name)).collect();
            let bads: Vec<&ConfigValue> = bad.iter().filter_map(|t| t.config.get(name)).collect();
            let (l, g) = match domain {
                ParamDomain::Choice(vals) => (
                    Self::categorical_density(vals.len().max(1), &goods, v),
                    Self::categorical_density(vals.len().max(1), &bads, v),
                ),
                ParamDomain::IntRange { .. } => {
                    let n = domain.grid_size().unwrap_or(1).max(1);
                    (
                        Self::categorical_density(n, &goods, v),
                        Self::categorical_density(n, &bads, v),
                    )
                }
                ParamDomain::Uniform { min, max } => {
                    let x = v.as_float().unwrap_or(*min);
                    let gs: Vec<f64> = goods.iter().filter_map(|v| v.as_float()).collect();
                    let bs: Vec<f64> = bads.iter().filter_map(|v| v.as_float()).collect();
                    let w = max - min;
                    (Self::parzen_density(&gs, x, w), Self::parzen_density(&bs, x, w))
                }
                ParamDomain::LogUniform { min, max } => {
                    let x = v.as_float().unwrap_or(*min).ln();
                    let gs: Vec<f64> =
                        goods.iter().filter_map(|v| v.as_float()).map(f64::ln).collect();
                    let bs: Vec<f64> =
                        bads.iter().filter_map(|v| v.as_float()).map(f64::ln).collect();
                    let w = max.ln() - min.ln();
                    (Self::parzen_density(&gs, x, w), Self::parzen_density(&bs, x, w))
                }
            };
            total += (l.max(1e-12)).ln() - (g.max(1e-12)).ln();
        }
        total
    }
}

impl Suggester for TpeSearch {
    fn suggest(&mut self, history: &[TrialResult]) -> Option<Config> {
        if self.remaining == 0 {
            return None;
        }
        let cfg = if self.issued < self.n_startup || history.len() < 2 {
            // warm-up: plain random sampling
            let mut c = Config::new();
            for (name, domain) in self.space.clone().params() {
                c.set(name, RandomSearch::sample_domain(&mut self.rng, domain)?);
            }
            c
        } else {
            let (good, bad) = self.split(history);
            let mut best: Option<(f64, Config)> = None;
            for _ in 0..self.n_candidates {
                let mut cand = Config::new();
                for (name, domain) in self.space.clone().params() {
                    cand.set(name, self.sample_from_good(name, domain, &good)?);
                }
                let s = self.score(&cand, &good, &bad);
                if best.as_ref().is_none_or(|(bs, _)| s > *bs) {
                    best = Some((s, cand));
                }
            }
            best?.1
        };
        self.issued += 1;
        self.remaining -= 1;
        Some(cfg)
    }

    fn parallelism(&self) -> usize {
        // model-based: evaluate in small batches so the model sees feedback
        4
    }

    fn name(&self) -> &'static str {
        "tpe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TrialOutcome;

    fn trial(space: &SearchSpace, cfg: Config, acc: f64) -> TrialResult {
        let _ = space;
        TrialResult { config: cfg, outcome: TrialOutcome::with_accuracy(acc), task_us: 0 }
    }

    /// Synthetic objective: accuracy = 1 - |lr - 0.01|·10, best at lr≈0.01.
    fn lr_objective(cfg: &Config) -> f64 {
        let lr = cfg.get_float("lr").unwrap();
        (1.0 - (lr.log10() - (-2.0)).abs() / 4.0).max(0.0)
    }

    #[test]
    fn warmup_is_random_then_model_kicks_in() {
        let space = SearchSpace::new().with("lr", ParamDomain::LogUniform { min: 1e-5, max: 1e-1 });
        let mut tpe = TpeSearch::new(&space, 40, 9);
        let mut history: Vec<TrialResult> = Vec::new();
        while let Some(cfg) = tpe.suggest(&history) {
            let acc = lr_objective(&cfg);
            history.push(trial(&space, cfg, acc));
        }
        assert_eq!(history.len(), 40);
        // late suggestions should concentrate near the optimum more than
        // early ones: compare mean |log10(lr)+2| of first vs last 10
        let dist = |t: &TrialResult| (t.config.get_float("lr").unwrap().log10() + 2.0).abs();
        let early: f64 = history[..10].iter().map(dist).sum::<f64>() / 10.0;
        let late: f64 = history[30..].iter().map(dist).sum::<f64>() / 10.0;
        assert!(late < early, "TPE should exploit: early mean dist {early:.3}, late {late:.3}");
    }

    #[test]
    fn categorical_exploitation() {
        // Good trials all use Adam; TPE should propose Adam most of the time.
        let space = SearchSpace::new()
            .with("optimizer", ParamDomain::choice_strs(&["Adam", "SGD", "RMSprop"]));
        let mut history = Vec::new();
        for i in 0..30 {
            let (opt, acc) = match i % 3 {
                0 => ("Adam", 0.95),
                1 => ("SGD", 0.30),
                _ => ("RMSprop", 0.35),
            };
            history.push(trial(
                &space,
                Config::new().with("optimizer", ConfigValue::Str(opt.into())),
                acc,
            ));
        }
        let mut tpe = TpeSearch::new(&space, 30, 4);
        tpe.n_startup = 0;
        let mut adam = 0;
        let mut total = 0;
        while let Some(cfg) = tpe.suggest(&history) {
            if cfg.get_str("optimizer") == Some("Adam") {
                adam += 1;
            }
            total += 1;
        }
        assert_eq!(total, 30);
        assert!(adam > total / 2, "Adam suggested {adam}/{total}");
    }

    #[test]
    fn split_respects_gamma() {
        let space = SearchSpace::paper_grid();
        let tpe = TpeSearch::new(&space, 10, 0);
        let history: Vec<TrialResult> = (0..8)
            .map(|i| trial(&space, Config::new().with("x", ConfigValue::Int(i)), i as f64 / 10.0))
            .collect();
        let (good, bad) = tpe.split(&history);
        assert_eq!(good.len(), 2, "ceil(8 × 0.25)");
        assert_eq!(bad.len(), 6);
        // good set holds the best accuracies
        assert!(good.iter().all(|t| t.outcome.accuracy >= 0.6));
    }

    #[test]
    fn parzen_density_peaks_at_observations() {
        let obs = [0.5];
        let at_obs = TpeSearch::parzen_density(&obs, 0.5, 1.0);
        let away = TpeSearch::parzen_density(&obs, 0.9, 1.0);
        assert!(at_obs > away);
        // empty observation set → uniform prior
        assert!((TpeSearch::parzen_density(&[], 0.3, 2.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn categorical_density_smooths() {
        let a = ConfigValue::Str("a".into());
        let b = ConfigValue::Str("b".into());
        let obs = vec![&a, &a, &a];
        let pa = TpeSearch::categorical_density(2, &obs, &a);
        let pb = TpeSearch::categorical_density(2, &obs, &b);
        assert!(pa > pb);
        assert!(pb > 0.0, "smoothing keeps unseen categories possible");
        assert!((pa + pb - 1.0).abs() < 1e-9);
    }

    #[test]
    fn determinism() {
        let space = SearchSpace::paper_grid();
        let run = |seed| {
            let mut t = TpeSearch::new(&space, 12, seed);
            let mut hist = Vec::new();
            let mut labels = Vec::new();
            while let Some(c) = t.suggest(&hist) {
                labels.push(c.label());
                let acc = if c.get_str("optimizer") == Some("Adam") { 0.9 } else { 0.5 };
                hist.push(trial(&space, c, acc));
            }
            labels
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
