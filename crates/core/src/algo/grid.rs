//! Exhaustive grid search — "trying out all possible combinations and
//! comparing the result using a metric such as loss or accuracy" (paper §2).

use crate::algo::Suggester;
use crate::results::TrialResult;
use crate::space::{Config, SearchSpace};

/// Enumerates the cartesian product of every discrete domain, in
/// row-major order (last declared parameter varies fastest).
#[derive(Debug, Clone)]
pub struct GridSearch {
    space: SearchSpace,
    sizes: Vec<usize>,
    next: usize,
    total: usize,
}

impl GridSearch {
    /// Build over `space`.
    ///
    /// # Panics
    /// Panics if the space contains a continuous domain — exhaustive grid
    /// search "becomes impossible and unrealistic with a larger search
    /// space" (paper §2), and an infinite one is the limit case.
    pub fn new(space: &SearchSpace) -> Self {
        let sizes: Vec<usize> = space
            .params()
            .iter()
            .map(|(name, d)| {
                d.grid_size().unwrap_or_else(|| {
                    panic!("grid search needs discrete domains; '{name}' is continuous")
                })
            })
            .collect();
        let total = sizes.iter().product::<usize>();
        GridSearch { space: space.clone(), sizes, next: 0, total }
    }

    /// Number of configurations in the grid.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The `i`-th configuration of the grid.
    pub fn config_at(&self, i: usize) -> Option<Config> {
        if i >= self.total || self.total == 0 {
            return None;
        }
        let mut cfg = Config::new();
        let mut rem = i;
        // last parameter varies fastest
        for (idx, (name, domain)) in self.space.params().iter().enumerate().rev() {
            let n = self.sizes[idx];
            let k = rem % n;
            rem /= n;
            cfg.set(name, domain.grid_value(k).expect("index in range"));
        }
        Some(cfg)
    }
}

impl Suggester for GridSearch {
    fn suggest(&mut self, _history: &[TrialResult]) -> Option<Config> {
        let cfg = self.config_at(self.next)?;
        self.next += 1;
        Some(cfg)
    }

    fn name(&self) -> &'static str {
        "grid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ConfigValue, ParamDomain};

    #[test]
    fn enumerates_the_full_product_once() {
        let space = SearchSpace::paper_grid();
        let mut g = GridSearch::new(&space);
        assert_eq!(g.total(), 27);
        let mut seen = Vec::new();
        while let Some(c) = g.suggest(&[]) {
            assert!(space.contains(&c));
            seen.push(c.label());
        }
        assert_eq!(seen.len(), 27);
        let mut dedup = seen.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 27, "no duplicates");
    }

    #[test]
    fn last_parameter_varies_fastest() {
        let space = SearchSpace::new()
            .with("a", ParamDomain::choice_ints(&[0, 1]))
            .with("b", ParamDomain::choice_ints(&[10, 20]));
        let mut g = GridSearch::new(&space);
        let order: Vec<(i64, i64)> = std::iter::from_fn(|| g.suggest(&[]))
            .map(|c| (c.get_int("a").unwrap(), c.get_int("b").unwrap()))
            .collect();
        assert_eq!(order, vec![(0, 10), (0, 20), (1, 10), (1, 20)]);
    }

    #[test]
    fn config_at_random_access_matches_iteration() {
        let space = SearchSpace::paper_grid();
        let mut g = GridSearch::new(&space);
        let by_iter: Vec<Config> = std::iter::from_fn(|| g.suggest(&[])).collect();
        let g2 = GridSearch::new(&space);
        for (i, c) in by_iter.iter().enumerate() {
            assert_eq!(g2.config_at(i).as_ref(), Some(c));
        }
        assert_eq!(g2.config_at(27), None);
    }

    #[test]
    fn int_range_participates_in_grid() {
        let space = SearchSpace::new()
            .with("h", ParamDomain::IntRange { min: 16, max: 48, step: 16 })
            .with("o", ParamDomain::choice_strs(&["a"]));
        let mut g = GridSearch::new(&space);
        let hs: Vec<i64> =
            std::iter::from_fn(|| g.suggest(&[])).map(|c| c.get_int("h").unwrap()).collect();
        assert_eq!(hs, vec![16, 32, 48]);
    }

    #[test]
    fn empty_domain_empties_the_grid() {
        let space = SearchSpace::new()
            .with("a", ParamDomain::Choice(vec![]))
            .with("b", ParamDomain::choice_ints(&[1, 2]));
        let mut g = GridSearch::new(&space);
        assert_eq!(g.total(), 0);
        assert!(g.suggest(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "continuous")]
    fn continuous_domain_rejected() {
        let space = SearchSpace::new().with("lr", ParamDomain::LogUniform { min: 1e-4, max: 1e-1 });
        let _ = GridSearch::new(&space);
    }

    #[test]
    fn empty_space_yields_one_empty_config() {
        // The product of zero domains has exactly one element: the empty
        // assignment. Matches the mathematical convention and lets callers
        // run a single baseline trial from an empty JSON object.
        let mut g = GridSearch::new(&SearchSpace::new());
        assert_eq!(g.total(), 1);
        let c = g.suggest(&[]).unwrap();
        assert!(c.is_empty());
        assert!(g.suggest(&[]).is_none());
    }

    #[test]
    fn suggester_metadata() {
        let g = GridSearch::new(&SearchSpace::paper_grid());
        assert_eq!(g.name(), "grid");
        assert_eq!(g.parallelism(), usize::MAX, "embarrassingly parallel");
        let cv = g.config_at(0).unwrap();
        assert_eq!(cv.get("optimizer").cloned(), Some(ConfigValue::Str("Adam".into())));
    }
}
