//! Random search — Bergstra & Bengio's algorithm: "rather than search
//! through the entire search space, combinations of parameters are picked
//! randomly. Empirical results show that random search is more efficient
//! than grid search" (paper §2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::algo::Suggester;
use crate::results::TrialResult;
use crate::space::{Config, ConfigValue, ParamDomain, SearchSpace};

/// Samples `n_trials` independent configurations, deterministically from a
/// seed.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    space: SearchSpace,
    remaining: usize,
    rng: StdRng,
}

impl RandomSearch {
    /// Sample `n_trials` configs from `space` using `seed`.
    pub fn new(space: &SearchSpace, n_trials: usize, seed: u64) -> Self {
        RandomSearch { space: space.clone(), remaining: n_trials, rng: StdRng::seed_from_u64(seed) }
    }

    /// Draw one value from a domain.
    pub(crate) fn sample_domain(rng: &mut StdRng, domain: &ParamDomain) -> Option<ConfigValue> {
        match domain {
            ParamDomain::Choice(vals) => {
                if vals.is_empty() {
                    None
                } else {
                    Some(vals[rng.gen_range(0..vals.len())].clone())
                }
            }
            ParamDomain::IntRange { .. } => {
                let n = domain.grid_size()?;
                if n == 0 {
                    None
                } else {
                    domain.grid_value(rng.gen_range(0..n))
                }
            }
            ParamDomain::Uniform { min, max } => {
                Some(ConfigValue::Float(rng.gen_range(*min..=*max)))
            }
            ParamDomain::LogUniform { min, max } => {
                let (lo, hi) = (min.ln(), max.ln());
                Some(ConfigValue::Float(rng.gen_range(lo..=hi).exp()))
            }
        }
    }

    fn sample(&mut self) -> Option<Config> {
        let mut cfg = Config::new();
        for (name, domain) in self.space.params() {
            cfg.set(name, Self::sample_domain(&mut self.rng, domain)?);
        }
        Some(cfg)
    }
}

impl Suggester for RandomSearch {
    fn suggest(&mut self, _history: &[TrialResult]) -> Option<Config> {
        if self.remaining == 0 {
            return None;
        }
        match self.sample() {
            Some(cfg) => {
                self.remaining -= 1;
                Some(cfg)
            }
            None => {
                self.remaining = 0;
                None
            }
        }
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_requested_count_inside_space() {
        let space = SearchSpace::paper_grid();
        let mut r = RandomSearch::new(&space, 50, 3);
        let mut n = 0;
        while let Some(c) = r.suggest(&[]) {
            assert!(space.contains(&c), "escaped: {}", c.label());
            n += 1;
        }
        assert_eq!(n, 50);
    }

    #[test]
    fn seeded_determinism() {
        let space = SearchSpace::paper_grid();
        let seq = |seed| {
            let mut r = RandomSearch::new(&space, 10, seed);
            std::iter::from_fn(move || r.suggest(&[])).map(|c| c.label()).collect::<Vec<_>>()
        };
        assert_eq!(seq(5), seq(5));
        assert_ne!(seq(5), seq(6));
    }

    #[test]
    fn continuous_domains_sample_in_bounds() {
        let space = SearchSpace::new()
            .with("lr", ParamDomain::LogUniform { min: 1e-5, max: 1e-1 })
            .with("m", ParamDomain::Uniform { min: 0.5, max: 0.9 });
        let mut r = RandomSearch::new(&space, 200, 11);
        let mut lrs = Vec::new();
        while let Some(c) = r.suggest(&[]) {
            let lr = c.get_float("lr").unwrap();
            let m = c.get_float("m").unwrap();
            assert!((1e-5..=1e-1).contains(&lr));
            assert!((0.5..=0.9).contains(&m));
            lrs.push(lr);
        }
        // log-uniform: a decent share of samples below the arithmetic
        // midpoint (0.05) — uniform sampling would put ~50% above it.
        let below_1e_3 = lrs.iter().filter(|&&x| x < 1e-3).count();
        assert!(below_1e_3 > 60, "log-uniform spreads small values: {below_1e_3}/200");
    }

    #[test]
    fn empty_choice_terminates_gracefully() {
        let space = SearchSpace::new().with("a", ParamDomain::Choice(vec![]));
        let mut r = RandomSearch::new(&space, 10, 0);
        assert!(r.suggest(&[]).is_none());
        assert!(r.suggest(&[]).is_none());
    }

    #[test]
    fn zero_trials_yields_nothing() {
        let mut r = RandomSearch::new(&SearchSpace::paper_grid(), 0, 0);
        assert!(r.suggest(&[]).is_none());
    }

    #[test]
    fn covers_the_grid_reasonably() {
        // With 27 cells and 100 samples, most cells should be visited —
        // sanity check that sampling isn't biased to a corner.
        let space = SearchSpace::paper_grid();
        let mut r = RandomSearch::new(&space, 100, 42);
        let mut seen = std::collections::BTreeSet::new();
        while let Some(c) = r.suggest(&[]) {
            seen.insert(c.label());
        }
        assert!(seen.len() >= 20, "only {} of 27 cells visited", seen.len());
    }
}
