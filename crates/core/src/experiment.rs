//! Experiments: one training run under one configuration.
//!
//! "Training and observing a model is an experiment and can be defined as a
//! task in PyCOMPSs terms" (paper §4). An experiment is the pair of a
//! [`Config`] and an *objective function*; the runner turns each pair into
//! one rcompss task.

use std::sync::Arc;

use rcompss::{Constraint, TaskError};
use tinyml::data::Dataset;
use tinyml::optim::OptimizerKind;
use tinyml::train::{train_with_checkpoints, Checkpointing, EpochSignal, TrainConfig};
use tinyml::TrainSnapshot;

use crate::ckpt::{trial_key, SweepJournal, SweepRecord};
use crate::early_stop::EarlyStop;
use crate::space::Config;

/// The result of one experiment — what the paper's `experiment` task
/// returns ("the result which can be a performance measure such as
/// validation loss or accuracy and training history").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrialOutcome {
    /// Final validation accuracy (the comparison metric).
    pub accuracy: f64,
    /// Per-epoch training loss.
    pub epoch_loss: Vec<f64>,
    /// Per-epoch validation accuracy (the curves of Figures 7–8).
    pub epoch_accuracy: Vec<f64>,
    /// Epochs actually run (< requested if early-stopped).
    pub epochs_run: u32,
    /// Failure description when the trial errored permanently.
    pub error: Option<String>,
}

impl TrialOutcome {
    /// Outcome carrying only a final accuracy.
    pub fn with_accuracy(accuracy: f64) -> Self {
        TrialOutcome { accuracy, ..Default::default() }
    }

    /// Outcome representing a permanently-failed trial.
    pub fn failed(reason: impl Into<String>) -> Self {
        TrialOutcome { error: Some(reason.into()), ..Default::default() }
    }

    /// Whether the trial failed.
    pub fn is_failed(&self) -> bool {
        self.error.is_some()
    }
}

/// An objective: evaluate `config`, optionally overriding its epoch count
/// with `budget` (used by successive halving). Runs *inside* a task.
pub type Objective =
    Arc<dyn Fn(&Config, Option<u32>) -> Result<TrialOutcome, TaskError> + Send + Sync>;

/// Maps a config to its simulated training duration (virtual µs).
pub type SimDurationFn = Arc<dyn Fn(&Config) -> u64 + Send + Sync>;

/// Options shared by every experiment of one HPO run.
#[derive(Clone)]
pub struct ExperimentOptions {
    /// Resource constraint per experiment task (the paper's `@constraint`).
    pub constraint: Constraint,
    /// Early-stopping criteria applied inside each trial and across trials.
    pub early_stop: Option<EarlyStop>,
    /// For the simulated backend: virtual duration of a config's training.
    pub sim_duration: Option<SimDurationFn>,
    /// Task name used in traces and graphs.
    pub task_name: String,
    /// Cap on trials submitted per wave (default: the algorithm's own
    /// parallelism). Set to roughly the cluster's slot count when using
    /// across-trial early stopping, so remaining waves can be skipped.
    pub wave_size: Option<usize>,
}

impl std::fmt::Debug for ExperimentOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentOptions")
            .field("constraint", &self.constraint)
            .field("early_stop", &self.early_stop)
            .field("sim_duration", &self.sim_duration.is_some())
            .field("task_name", &self.task_name)
            .finish()
    }
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            constraint: Constraint::cpus(1),
            early_stop: None,
            sim_duration: None,
            task_name: "graph.experiment".to_string(),
            wave_size: None,
        }
    }
}

impl ExperimentOptions {
    /// Set the per-task constraint (chainable).
    pub fn with_constraint(mut self, c: Constraint) -> Self {
        self.constraint = c;
        self
    }

    /// Set early stopping (chainable).
    pub fn with_early_stop(mut self, es: EarlyStop) -> Self {
        self.early_stop = Some(es);
        self
    }

    /// Set the simulated duration model (chainable).
    pub fn with_sim_duration(mut self, f: impl Fn(&Config) -> u64 + Send + Sync + 'static) -> Self {
        self.sim_duration = Some(Arc::new(f));
        self
    }
}

/// Translate an HPO [`Config`] into a tinyml [`TrainConfig`].
///
/// Recognised keys (all optional, with defaults): `optimizer`,
/// `num_epochs`, `batch_size`, `learning_rate`, `hidden` (single hidden
/// width). The seed is derived from the config label so distinct configs
/// train with distinct but reproducible randomness.
pub fn train_config_from(
    config: &Config,
    hidden_default: &[usize],
) -> Result<TrainConfig, TaskError> {
    let optimizer = match config.get_str("optimizer") {
        Some(s) => {
            s.parse::<OptimizerKind>().map_err(|e| TaskError::new(format!("bad optimizer: {e}")))?
        }
        None => OptimizerKind::Adam,
    };
    let epochs = config.get_int("num_epochs").unwrap_or(10);
    if epochs <= 0 {
        return Err(TaskError::new("num_epochs must be positive"));
    }
    let batch = config.get_int("batch_size").unwrap_or(64);
    if batch <= 0 {
        return Err(TaskError::new("batch_size must be positive"));
    }
    let hidden = match config.get_int("hidden") {
        Some(h) if h > 0 => vec![h as usize],
        Some(_) => return Err(TaskError::new("hidden must be positive")),
        None => hidden_default.to_vec(),
    };
    // Optional schedule keys: `lr_schedule` = "cosine", or a step decay via
    // `lr_decay_every` (+ `lr_decay_factor`, default 0.5).
    let lr_schedule = match (config.get_str("lr_schedule"), config.get_int("lr_decay_every")) {
        (Some("cosine"), _) => tinyml::train::LrSchedule::Cosine { min_frac: 0.1 },
        (Some(other), _) if other != "constant" => {
            return Err(TaskError::new(format!("unknown lr_schedule '{other}'")));
        }
        (_, Some(every)) if every > 0 => tinyml::train::LrSchedule::StepDecay {
            every_epochs: every as u32,
            factor: config.get_float("lr_decay_factor").unwrap_or(0.5) as f32,
        },
        _ => tinyml::train::LrSchedule::Constant,
    };
    let weight_decay = config.get_float("weight_decay").unwrap_or(0.0) as f32;
    if weight_decay < 0.0 {
        return Err(TaskError::new("weight_decay must be non-negative"));
    }

    // Model family: "arch" = "dense" (default) or "cnn", with optional
    // "conv1_channels"/"conv2_channels" (the paper's experiments are CNNs).
    let arch = match config.get_str("arch") {
        None | Some("dense") => tinyml::ModelArch::Dense,
        Some("cnn") => {
            let c1 = config.get_int("conv1_channels").unwrap_or(6);
            let c2 = config.get_int("conv2_channels").unwrap_or(12);
            if c1 <= 0 || c2 <= 0 {
                return Err(TaskError::new("conv channels must be positive"));
            }
            tinyml::ModelArch::Cnn { conv1_channels: c1 as usize, conv2_channels: c2 as usize }
        }
        Some(other) => return Err(TaskError::new(format!("unknown arch '{other}'"))),
    };

    // FNV-1a over the *stage-base* label ([`crate::stagetree::seed_label`]):
    // a stable per-config seed that deliberately ignores late-binding
    // params (total epochs, the LR-decay point). Configs that share a
    // training prefix therefore share a seed — which is exactly what makes
    // stage-tree prefix sharing bit-identical to naive retraining — while
    // configs that diverge from epoch 0 still get distinct seeds.
    let seed = crate::stagetree::seed_label(config)
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3));
    Ok(TrainConfig {
        epochs: epochs as u32,
        batch_size: batch as usize,
        optimizer,
        learning_rate: config.get_float("learning_rate").unwrap_or(0.0) as f32,
        lr_schedule,
        arch,
        weight_decay,
        hidden_layers: hidden,
        val_fraction: 0.2,
        seed,
        // 0 = inherit the ambient degree: the runner installs the task's
        // core grant via `tinyml::par::with_threads` around the objective,
        // so a `@constraint(computing_units=N)` trial trains on N threads.
        threads: 0,
    })
}

/// Build an objective that really trains a tinyml MLP on `data` — the Rust
/// stand-in for the paper's TensorFlow `experiment(config)` task.
///
/// The dataset is shared behind an `Arc`, mirroring the PFS deployment
/// where "all tasks can read and write to the PFS".
pub fn tinyml_objective(data: Arc<Dataset>, hidden: Vec<usize>) -> Objective {
    tinyml_objective_with_early_stop(data, hidden, None)
}

/// Like [`tinyml_objective`] but stopping each trial early per `early_stop`.
pub fn tinyml_objective_with_early_stop(
    data: Arc<Dataset>,
    hidden: Vec<usize>,
    early_stop: Option<EarlyStop>,
) -> Objective {
    tinyml_objective_checkpointed(data, hidden, early_stop, TrialCheckpoints::default())
}

/// How a single trial checkpoints its model (the sweep-level journal is
/// [`crate::ckpt`]'s business; `journal` here only receives the `Epoch`
/// marks that record a snapshot reaching disk).
#[derive(Clone, Default)]
pub struct TrialCheckpoints {
    /// Snapshot every `every` epochs (0 = off).
    pub every: u32,
    /// Durable on-disk store — survives a driver restart. `None` leaves
    /// only the runtime's in-memory snapshot channel (still enough for
    /// same-run retries and killed distributed workers).
    pub store: Option<Arc<ckpt::DirStore>>,
    /// Where to journal `Epoch` records (threaded runs; a distributed
    /// worker has no journal and simply leaves this `None`).
    pub journal: Option<SweepJournal>,
}

/// Like [`tinyml_objective_with_early_stop`], and additionally resumable:
/// each trial restores the latest model snapshot for its [`trial_key`] —
/// from the runtime's snapshot channel (a retried attempt, possibly on a
/// replacement worker) or from `ckpts.store` (a restarted driver) — and
/// publishes a new snapshot every `ckpts.every` epochs. Restoring costs
/// nothing when no snapshot exists; the trial trains from scratch.
///
/// Because a [`TrainSnapshot`] carries the *original* seed, optimizer
/// moments and history, a resumed trial replays the exact minibatch
/// order and produces the same outcome bit-for-bit as an uninterrupted
/// run.
pub fn tinyml_objective_checkpointed(
    data: Arc<Dataset>,
    hidden: Vec<usize>,
    early_stop: Option<EarlyStop>,
    ckpts: TrialCheckpoints,
) -> Objective {
    Arc::new(move |config: &Config, budget: Option<u32>| {
        let mut cfg = train_config_from(config, &hidden)?;
        if let Some(b) = budget {
            cfg.epochs = b.max(1);
        }
        let key = trial_key(config);
        let reg = runmetrics::global();
        let resume = (ckpts.every > 0)
            .then(|| {
                rcompss::snapshot::load(key).and_then(|b| TrainSnapshot::decode(&b)).or_else(|| {
                    let store = ckpts.store.as_ref()?;
                    let (_, blob) = store.latest(key).ok().flatten()?;
                    TrainSnapshot::decode(&blob)
                })
            })
            .flatten();
        if let Some(snap) = &resume {
            reg.counter("ckpt_restore_total").incr();
            reg.counter("ckpt_restored_epochs_total").add(u64::from(snap.next_epoch));
        }
        let store = ckpts.store.clone();
        let journal = ckpts.journal.clone();
        let mut sink = move |snap: &TrainSnapshot| {
            let bytes = snap.encode();
            reg.counter("ckpt_bytes_written").add(bytes.len() as u64);
            reg.counter("ckpt_snapshots_saved_total").incr();
            rcompss::snapshot::save(key, &bytes);
            if let Some(store) = &store {
                if store.save(key, snap.next_epoch, &bytes).is_ok() {
                    if let Some(j) = &journal {
                        let _ = j.record(&SweepRecord::Epoch { key, epoch: snap.next_epoch });
                    }
                }
            }
        };
        let mut tracker = early_stop.map(|es| es.tracker());
        let history = train_with_checkpoints(
            &cfg,
            &data,
            Checkpointing { every: ckpts.every, resume, sink: Some(&mut sink) },
            &mut |_, _, val_acc| {
                let stop = tracker.as_mut().is_some_and(|t| t.observe(val_acc));
                if stop {
                    EpochSignal::Stop
                } else {
                    EpochSignal::Continue
                }
            },
        );
        // The outcome supersedes the snapshots: drop them so the next
        // sweep in the same directory starts clean.
        rcompss::snapshot::discard(key);
        if let Some(store) = &ckpts.store {
            let _ = store.clear(key);
        }
        Ok(TrialOutcome {
            accuracy: history.final_val_accuracy(),
            epochs_run: history.epochs_run() as u32,
            epoch_loss: history.train_loss,
            epoch_accuracy: history.val_accuracy,
            error: None,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ConfigValue;

    fn paper_config(opt: &str, epochs: i64, batch: i64) -> Config {
        Config::new()
            .with("optimizer", ConfigValue::Str(opt.into()))
            .with("num_epochs", ConfigValue::Int(epochs))
            .with("batch_size", ConfigValue::Int(batch))
    }

    #[test]
    fn train_config_translation() {
        let cfg = train_config_from(&paper_config("RMSprop", 50, 128), &[64]).unwrap();
        assert_eq!(cfg.optimizer, OptimizerKind::RmsProp);
        assert_eq!(cfg.epochs, 50);
        assert_eq!(cfg.batch_size, 128);
        assert_eq!(cfg.hidden_layers, vec![64]);
        // distinct configs get distinct seeds; same config same seed
        let a = train_config_from(&paper_config("Adam", 20, 32), &[64]).unwrap();
        let b = train_config_from(&paper_config("Adam", 20, 32), &[64]).unwrap();
        let c = train_config_from(&paper_config("Adam", 20, 64), &[64]).unwrap();
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.seed, c.seed);
    }

    #[test]
    fn translation_rejects_nonsense() {
        assert!(train_config_from(&paper_config("NoSuchOpt", 10, 32), &[8]).is_err());
        assert!(train_config_from(&paper_config("Adam", 0, 32), &[8]).is_err());
        assert!(train_config_from(&paper_config("Adam", 10, -1), &[8]).is_err());
        let bad_hidden = paper_config("Adam", 5, 32).with("hidden", ConfigValue::Int(0));
        assert!(train_config_from(&bad_hidden, &[8]).is_err());
    }

    #[test]
    fn schedule_and_decay_keys_translate() {
        use tinyml::train::LrSchedule;
        let cfg = paper_config("Adam", 10, 32)
            .with("lr_decay_every", ConfigValue::Int(3))
            .with("lr_decay_factor", ConfigValue::Float(0.25))
            .with("weight_decay", ConfigValue::Float(1e-4));
        let t = train_config_from(&cfg, &[8]).unwrap();
        assert_eq!(t.lr_schedule, LrSchedule::StepDecay { every_epochs: 3, factor: 0.25 });
        assert!((t.weight_decay - 1e-4).abs() < 1e-9);

        let cosine =
            paper_config("Adam", 10, 32).with("lr_schedule", ConfigValue::Str("cosine".into()));
        assert!(matches!(
            train_config_from(&cosine, &[8]).unwrap().lr_schedule,
            LrSchedule::Cosine { .. }
        ));

        let bad =
            paper_config("Adam", 10, 32).with("lr_schedule", ConfigValue::Str("warmup".into()));
        assert!(train_config_from(&bad, &[8]).is_err());
        let neg = paper_config("Adam", 10, 32).with("weight_decay", ConfigValue::Float(-1.0));
        assert!(train_config_from(&neg, &[8]).is_err());
    }

    #[test]
    fn arch_key_selects_model_family() {
        let dense = train_config_from(&paper_config("Adam", 5, 32), &[8]).unwrap();
        assert_eq!(dense.arch, tinyml::ModelArch::Dense);

        let cnn = paper_config("Adam", 5, 32)
            .with("arch", ConfigValue::Str("cnn".into()))
            .with("conv1_channels", ConfigValue::Int(4))
            .with("conv2_channels", ConfigValue::Int(8));
        let t = train_config_from(&cnn, &[8]).unwrap();
        assert_eq!(t.arch, tinyml::ModelArch::Cnn { conv1_channels: 4, conv2_channels: 8 });

        let default_cnn = paper_config("Adam", 5, 32).with("arch", ConfigValue::Str("cnn".into()));
        assert_eq!(
            train_config_from(&default_cnn, &[8]).unwrap().arch,
            tinyml::ModelArch::Cnn { conv1_channels: 6, conv2_channels: 12 }
        );

        let bad = paper_config("Adam", 5, 32).with("arch", ConfigValue::Str("rnn".into()));
        assert!(train_config_from(&bad, &[8]).is_err());
        let bad_ch = paper_config("Adam", 5, 32)
            .with("arch", ConfigValue::Str("cnn".into()))
            .with("conv1_channels", ConfigValue::Int(0));
        assert!(train_config_from(&bad_ch, &[8]).is_err());
    }

    #[test]
    fn cnn_objective_trains_end_to_end() {
        use tinyml::data::SyntheticSpec;
        let data = Arc::new(Dataset::synthetic(
            "mnist-spatial",
            500,
            &SyntheticSpec::mnist_like_spatial(),
            3,
        ));
        let obj = tinyml_objective(data, vec![16]);
        let cfg = paper_config("Adam", 6, 32)
            .with("arch", ConfigValue::Str("cnn".into()))
            .with("learning_rate", ConfigValue::Float(0.003));
        let out = obj(&cfg, None).unwrap();
        assert_eq!(out.epochs_run, 6);
        assert!(out.accuracy > 0.15, "clearly above the 0.1 chance level: {}", out.accuracy);
    }

    #[test]
    fn defaults_fill_missing_keys() {
        let cfg = train_config_from(&Config::new(), &[16, 8]).unwrap();
        assert_eq!(cfg.epochs, 10);
        assert_eq!(cfg.batch_size, 64);
        assert_eq!(cfg.hidden_layers, vec![16, 8]);
        assert_eq!(cfg.optimizer, OptimizerKind::Adam);
    }

    #[test]
    fn objective_trains_and_reports_curves() {
        let data = Arc::new(Dataset::synthetic_mnist(1_200, 3));
        let obj = tinyml_objective(data, vec![32]);
        let out = obj(&paper_config("Adam", 5, 64), None).unwrap();
        assert_eq!(out.epochs_run, 5);
        assert_eq!(out.epoch_accuracy.len(), 5);
        assert_eq!(out.epoch_loss.len(), 5);
        assert!(out.accuracy > 0.3, "got {}", out.accuracy);
        assert!(!out.is_failed());
    }

    #[test]
    fn budget_overrides_epochs() {
        let data = Arc::new(Dataset::synthetic_mnist(200, 3));
        let obj = tinyml_objective(data, vec![8]);
        let out = obj(&paper_config("SGD", 10, 64), Some(2)).unwrap();
        assert_eq!(out.epochs_run, 2, "budget 2 overrides num_epochs 10");
    }

    #[test]
    fn within_trial_early_stop_cuts_epochs() {
        let data = Arc::new(Dataset::synthetic_mnist(800, 5));
        // very easy data: 0.5 target reached almost immediately
        let obj =
            tinyml_objective_with_early_stop(data, vec![32], Some(EarlyStop::at_accuracy(0.5)));
        let out = obj(&paper_config("Adam", 20, 32), None).unwrap();
        assert!(out.epochs_run < 20, "stopped early at epoch {}", out.epochs_run);
        assert!(out.accuracy >= 0.5);
    }

    #[test]
    fn checkpointed_objective_journals_epochs_and_cleans_up() {
        let data = Arc::new(Dataset::synthetic_mnist(200, 3));
        let dir = std::env::temp_dir().join(format!("hpo-exp-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = crate::ckpt::CheckpointSpec::new(&dir).with_every(2);
        let journal = spec.journal().unwrap();
        let store = Arc::new(spec.store().unwrap());
        let obj = tinyml_objective_checkpointed(
            Arc::clone(&data),
            vec![8],
            None,
            TrialCheckpoints { every: 2, store: Some(Arc::clone(&store)), journal: Some(journal) },
        );
        let cfg = paper_config("Adam", 5, 32);
        let out = obj(&cfg, None).unwrap();
        assert_eq!(out.epochs_run, 5);

        let key = trial_key(&cfg);
        let state = spec.recover().unwrap();
        assert_eq!(state.last_epoch[&key], 4, "snapshots at epochs 2 and 4 journaled");
        assert!(store.epochs(key).unwrap().is_empty(), "completion clears the trial's store");

        // With no snapshot to resume from, checkpointing changes nothing
        // about the result.
        let plain = tinyml_objective(Arc::clone(&data), vec![8])(&cfg, None).unwrap();
        assert_eq!(plain, out, "checkpointing is observationally free");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outcome_helpers() {
        let ok = TrialOutcome::with_accuracy(0.7);
        assert!(!ok.is_failed());
        assert_eq!(ok.accuracy, 0.7);
        let bad = TrialOutcome::failed("boom");
        assert!(bad.is_failed());
        assert_eq!(bad.error.as_deref(), Some("boom"));
    }

    #[test]
    fn options_builders() {
        let o = ExperimentOptions::default()
            .with_constraint(Constraint::cpus(4).with_gpus(1))
            .with_early_stop(EarlyStop::at_accuracy(0.9))
            .with_sim_duration(|_| 42);
        assert_eq!(o.constraint.cpus, 4);
        assert!(o.early_stop.is_some());
        assert_eq!((o.sim_duration.unwrap())(&Config::new()), 42);
        let dbg = format!("{:?}", ExperimentOptions::default());
        assert!(dbg.contains("graph.experiment"));
    }
}
