//! The HPO runner: drives a [`Suggester`] over the rcompss runtime.
//!
//! This is the paper's `main()` (Listing 2): generate configs, launch one
//! `experiment(config)` task per config, `compss_wait_on` the results, and
//! hand them to the plotting/reporting layer. The runner adds the paper's
//! early stopping and the successive-halving execution mode.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rcompss::{ArgSpec, DataHandle, Runtime, SubmitError, SubmitOpts, SubmitResult};
use tinyml::TrainSnapshot;

use crate::algo::hyperband::Bracket;
use crate::algo::random::RandomSearch;
use crate::algo::Suggester;
use crate::ckpt::{trial_key, ResumeStats, SweepJournal, SweepRecord, SweepState};
use crate::experiment::{ExperimentOptions, Objective, TrialOutcome};
use crate::results::{HpoReport, TrialResult};
use crate::space::{Config, SearchSpace};
use crate::stagetree::{
    is_cosine, outcome_from_snapshot, stage_task_def, StageObjective, StagePayload, StagePlan,
};
use crate::wire::{experiment_task_def, TaskPayload};

/// Executes HPO runs.
#[derive(Debug, Clone)]
pub struct HpoRunner {
    /// Options applied to every experiment task.
    pub opts: ExperimentOptions,
}

/// What a staged (prefix-shared) run saved relative to retraining every
/// trial from scratch. All figures count *training epochs*, the unit the
/// paper's sweeps are billed in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Stage segments submitted (== trials when nothing is shared).
    pub segments: usize,
    /// Segments that resumed a parent fork snapshot.
    pub forks: usize,
    /// Epochs a naive run of the collected trials would have trained.
    pub naive_epochs: u64,
    /// Epochs actually trained across all submitted segments.
    pub staged_epochs: u64,
}

impl StageStats {
    /// Epochs the dedup avoided (0 when nothing was shared).
    pub fn epochs_saved(&self) -> u64 {
        self.naive_epochs.saturating_sub(self.staged_epochs)
    }
}

/// Drain a history-independent suggester (grid, random) into its full
/// config list. Planning a stage tree needs the whole sweep up front,
/// which is only faithful for algorithms whose suggestions ignore the
/// observed results — the caller gates on that (see `--share-prefixes`).
pub fn materialize(algo: &mut dyn Suggester) -> Vec<Config> {
    let mut configs = Vec::new();
    while let Some(c) = algo.suggest(&[]) {
        configs.push(c);
    }
    configs
}

/// Cooperative controls threaded through [`HpoRunner::run_controlled`]: an
/// admission gate consulted before every trial submission and a cancel
/// flag checked at every suggestion. The sweep server uses the gate for
/// per-tenant fair-share and rate limiting, and the cancel flag for
/// client-requested aborts — in both cases the run stops *suggesting* and
/// drains the in-flight wave normally, so every collected trial is a
/// complete, journal-identical result.
///
/// Cloning is cheap and shares the underlying flag: keep one clone on the
/// control plane to call [`SweepControl::cancel`] while the sweep thread
/// runs with the other.
#[derive(Clone, Default)]
pub struct SweepControl {
    cancelled: Arc<AtomicBool>,
    gate: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
}

impl std::fmt::Debug for SweepControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepControl")
            .field("cancelled", &self.is_cancelled())
            .field("gated", &self.gate.is_some())
            .finish()
    }
}

impl SweepControl {
    /// No gate, not cancelled: behaves exactly like an uncontrolled run.
    pub fn new() -> SweepControl {
        SweepControl::default()
    }

    /// Install the admission gate: called (and allowed to block) before
    /// every trial submission. Returning `false` ends the sweep cleanly
    /// after draining the in-flight wave — the server's quota-exhausted
    /// path. A blocking gate should watch [`SweepControl::is_cancelled`]
    /// so a cancel interrupts the wait.
    pub fn with_gate(mut self, gate: impl Fn() -> bool + Send + Sync + 'static) -> SweepControl {
        self.gate = Some(Arc::new(gate));
        self
    }

    /// Ask the sweep to stop: nothing further is suggested or submitted;
    /// in-flight trials drain normally and land in the report.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`SweepControl::cancel`] was called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Shared view of the cancel flag. A blocking gate installed with
    /// [`SweepControl::with_gate`] captures this so a cancel interrupts
    /// its wait (the closure cannot capture the control that owns it).
    pub fn cancel_token(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancelled)
    }

    /// May the next trial be submitted? `false` ends the sweep.
    fn admit(&self) -> bool {
        if self.is_cancelled() {
            return false;
        }
        match &self.gate {
            Some(gate) => gate() && !self.is_cancelled(),
            None => true,
        }
    }
}

/// Cached handles for the per-trial series in the runtime's metrics
/// registry. Fetched once per run so the per-trial cost is a handful of
/// atomic ops, and pre-registered so every series appears in exports even
/// when it stays at zero (a run with no failures still exports the
/// failure counter).
struct TrialMetrics {
    completed: runmetrics::Counter,
    failed: runmetrics::Counter,
    /// Trials whose outcome was replayed from the sweep journal instead
    /// of re-running (see [`HpoRunner::run_journaled`]).
    resumed: runmetrics::Counter,
    best_accuracy: runmetrics::Gauge,
    trial_task_us: runmetrics::Histogram,
}

impl TrialMetrics {
    fn new(rt: &Runtime) -> Option<Self> {
        rt.metrics_enabled().then(|| {
            let reg = rt.metrics();
            TrialMetrics {
                completed: reg.counter("hpo_trials_completed_total"),
                failed: reg.counter("hpo_trials_failed_total"),
                resumed: reg.counter("hpo_trials_resumed_total"),
                best_accuracy: reg.gauge("hpo_best_accuracy"),
                trial_task_us: reg.histogram("hpo_trial_task_us"),
            }
        })
    }

    fn observe(&self, trial: &TrialResult) {
        if trial.outcome.is_failed() {
            self.failed.incr();
        } else {
            self.completed.incr();
            self.best_accuracy.set_max(trial.outcome.accuracy);
            self.trial_task_us.record(trial.task_us);
        }
    }
}

impl HpoRunner {
    /// Build with the given experiment options.
    pub fn new(opts: ExperimentOptions) -> Self {
        HpoRunner { opts }
    }

    /// Register the experiment task definition (see
    /// [`crate::wire::experiment_task_def`] — shared with distributed
    /// workers, which must register the identical def by name).
    fn register_task(&self, _rt: &Runtime, objective: &Objective) -> rcompss::TaskDef {
        experiment_task_def(&self.opts, objective)
    }

    /// Submit one experiment.
    fn submit_one(
        &self,
        rt: &Runtime,
        def: &rcompss::TaskDef,
        config: &Config,
        budget: Option<u32>,
    ) -> Result<SubmitResult, SubmitError> {
        let cfg_handle = rt.literal(config.clone());
        let budget_handle = rt.literal(budget);
        let sim_duration_us = self.opts.sim_duration.as_ref().map(|f| f(config));
        rt.submit_with(
            def,
            vec![ArgSpec::In(cfg_handle), ArgSpec::In(budget_handle)],
            SubmitOpts { sim_duration_us },
        )
    }

    /// Collect one submitted experiment into a [`TrialResult`].
    fn collect(&self, rt: &Runtime, config: Config, sub: &SubmitResult) -> TrialResult {
        match rt.wait_on(&sub.returns[0]) {
            Ok(v) => {
                let (outcome, task_us) = v
                    .downcast_ref::<TaskPayload>()
                    .cloned()
                    .expect("experiment task returns (TrialOutcome, u64)");
                TrialResult { config, outcome, task_us }
            }
            Err(e) => {
                TrialResult { config, outcome: TrialOutcome::failed(e.to_string()), task_us: 0 }
            }
        }
    }

    /// Run `algo` to exhaustion (or early stop) with `objective`.
    ///
    /// Suggestions are taken in waves of `min(algo.parallelism(),
    /// opts.wave_size)`; each wave is submitted as independent parallel
    /// tasks (the paper's "embarrassingly parallel" structure), then
    /// synchronised. Across-trial early stopping cuts the run after the
    /// first wave containing a target-reaching trial.
    pub fn run(
        &self,
        rt: &Runtime,
        algo: &mut dyn Suggester,
        objective: Objective,
    ) -> Result<HpoReport, SubmitError> {
        self.run_observed(rt, algo, objective, |_| {})
    }

    /// Like [`HpoRunner::run`] but invoking `observer` after every
    /// collected trial — the hook behind [`crate::dashboard::Dashboard`]
    /// ("for immediate and interactive action, the performance measure
    /// returned can be visualised").
    pub fn run_observed(
        &self,
        rt: &Runtime,
        algo: &mut dyn Suggester,
        objective: Objective,
        mut observer: impl FnMut(&TrialResult),
    ) -> Result<HpoReport, SubmitError> {
        self.run_inner(rt, algo, objective, None, None, None, &mut observer)
            .map(|(report, _)| report)
    }

    /// Like [`HpoRunner::run_observed`] under a [`SweepControl`]: the
    /// gate is consulted before every submission and a cancel stops the
    /// run after draining the in-flight wave. With a fresh, ungated
    /// control this is byte-identical to `run_observed` — the sweep
    /// server leans on that for its standalone-vs-served parity
    /// guarantee.
    pub fn run_controlled(
        &self,
        rt: &Runtime,
        algo: &mut dyn Suggester,
        objective: Objective,
        control: &SweepControl,
        mut observer: impl FnMut(&TrialResult),
    ) -> Result<HpoReport, SubmitError> {
        self.run_inner(rt, algo, objective, Some(control), None, None, &mut observer)
            .map(|(report, _)| report)
    }

    /// Like [`HpoRunner::run_observed`], journaling every submission and
    /// completion to `journal`, and — when `resume` carries a recovered
    /// [`SweepState`] — skipping trials the journal already finished
    /// (their journaled outcome re-enters the report verbatim, so the
    /// trial table matches an uninterrupted run byte-for-byte) while
    /// re-enqueueing the ones that were in flight at the crash.
    pub fn run_journaled(
        &self,
        rt: &Runtime,
        algo: &mut dyn Suggester,
        objective: Objective,
        journal: &SweepJournal,
        resume: Option<&SweepState>,
        mut observer: impl FnMut(&TrialResult),
    ) -> Result<(HpoReport, ResumeStats), SubmitError> {
        self.run_inner(rt, algo, objective, None, Some(journal), resume, &mut observer)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inner(
        &self,
        rt: &Runtime,
        algo: &mut dyn Suggester,
        objective: Objective,
        control: Option<&SweepControl>,
        journal: Option<&SweepJournal>,
        resume: Option<&SweepState>,
        observer: &mut dyn FnMut(&TrialResult),
    ) -> Result<(HpoReport, ResumeStats), SubmitError> {
        let def = self.register_task(rt, &objective);
        let wave_limit = self.opts.wave_size.unwrap_or(usize::MAX).min(algo.parallelism()).max(1);
        let trial_metrics = TrialMetrics::new(rt);
        let mut stats = ResumeStats::default();

        let mut history: Vec<TrialResult> = Vec::new();
        let mut early_stopped = false;
        let mut halted = false;
        loop {
            let mut wave: Vec<(Config, SubmitResult)> = Vec::new();
            while wave.len() < wave_limit && !early_stopped && !halted {
                if control.is_some_and(|c| c.is_cancelled()) {
                    halted = true;
                    break;
                }
                let Some(config) = algo.suggest(&history) else { break };
                // A journaled-complete trial is not re-run: its recorded
                // outcome goes straight into the history (and through the
                // observer, so dashboards see the full table).
                if let Some((outcome, task_us)) = resume.and_then(|s| s.finished(&config)) {
                    stats.skipped_complete += 1;
                    if let Some(tm) = &trial_metrics {
                        tm.resumed.incr();
                    }
                    let trial = TrialResult { config, outcome: outcome.clone(), task_us: *task_us };
                    if let Some(tm) = &trial_metrics {
                        tm.observe(&trial);
                    }
                    observer(&trial);
                    if let Some(es) = &self.opts.early_stop {
                        if es.target_reached(trial.outcome.accuracy) {
                            early_stopped = true;
                        }
                    }
                    history.push(trial);
                    continue;
                }
                if resume.is_some_and(|s| s.was_in_flight(&config)) {
                    stats.reenqueued += 1;
                }
                // The gate may block (fair-share turn, rate-limit token);
                // a denial ends the sweep after the wave drains. The
                // suggested config is deliberately dropped — a cancelled
                // or quota-stopped sweep reports only complete trials.
                if control.is_some_and(|c| !c.admit()) {
                    halted = true;
                    break;
                }
                if let Some(j) = journal {
                    let _ = j.record(&SweepRecord::Submitted {
                        key: trial_key(&config),
                        label: config.label(),
                    });
                }
                let sub = self.submit_one(rt, &def, &config, None)?;
                wave.push((config, sub));
            }
            if wave.is_empty() {
                break;
            }
            for (config, sub) in wave {
                let trial = self.collect(rt, config, &sub);
                if let Some(j) = journal {
                    let _ = j.record(&SweepRecord::Finished {
                        key: trial_key(&trial.config),
                        outcome: trial.outcome.clone(),
                        task_us: trial.task_us,
                    });
                }
                if let Some(tm) = &trial_metrics {
                    tm.observe(&trial);
                }
                observer(&trial);
                if let Some(es) = &self.opts.early_stop {
                    if es.target_reached(trial.outcome.accuracy) {
                        early_stopped = true;
                    }
                }
                history.push(trial);
            }
            if early_stopped || halted {
                break;
            }
        }
        Ok((
            HpoReport {
                algorithm: algo.name().to_string(),
                trials: history,
                wall_us: rt.now_us(),
                early_stopped,
            },
            stats,
        ))
    }

    /// Run one successive-halving bracket: sample the first rung randomly
    /// from `space`, evaluate every rung in parallel at its epoch budget,
    /// and promote the top configurations (the paper's early-stopping idea
    /// taken to its scheduler-shaped conclusion).
    pub fn run_successive_halving(
        &self,
        rt: &Runtime,
        space: &SearchSpace,
        objective: Objective,
        bracket: &Bracket,
        seed: u64,
    ) -> Result<HpoReport, SubmitError> {
        let def = self.register_task(rt, &objective);
        let trial_metrics = TrialMetrics::new(rt);
        let mut sampler = RandomSearch::new(space, bracket.rungs[0].n_configs, seed);
        let mut candidates: Vec<Config> = Vec::new();
        while let Some(c) = sampler.suggest(&[]) {
            candidates.push(c);
        }

        let mut history: Vec<TrialResult> = Vec::new();
        for (i, rung) in bracket.rungs.iter().enumerate() {
            candidates.truncate(rung.n_configs);
            if candidates.is_empty() {
                break;
            }
            let wave: Vec<(Config, SubmitResult)> = candidates
                .iter()
                .map(|c| Ok((c.clone(), self.submit_one(rt, &def, c, Some(rung.budget))?)))
                .collect::<Result<_, SubmitError>>()?;
            let mut rung_results: Vec<TrialResult> = wave
                .into_iter()
                .map(|(config, sub)| {
                    let trial = self.collect(rt, config, &sub);
                    if let Some(tm) = &trial_metrics {
                        tm.observe(&trial);
                    }
                    trial
                })
                .collect();
            // Promote the best survivors to the next rung.
            rung_results.sort_by(|a, b| b.outcome.accuracy.total_cmp(&a.outcome.accuracy));
            candidates = rung_results
                .iter()
                .filter(|t| !t.outcome.is_failed())
                .take(bracket.survivors_of(i))
                .map(|t| t.config.clone())
                .collect();
            history.extend(rung_results);
        }
        Ok(HpoReport {
            algorithm: "successive-halving".to_string(),
            trials: history,
            wall_us: rt.now_us(),
            early_stopped: false,
        })
    }

    /// Submit every segment of `plan` in topological order — a parent's
    /// return handle feeds each child's fourth argument, so the runtime's
    /// dependency graph chains the segments and (distributed) ships each
    /// fork snapshot content-addressed through the block plane. The gate
    /// is consulted per segment; once it denies, the remaining prefix is
    /// dropped whole (children of an unsubmitted parent are skipped).
    fn submit_plan(
        &self,
        rt: &Runtime,
        def: &rcompss::TaskDef,
        plan: &StagePlan,
        control: Option<&SweepControl>,
    ) -> Result<(Vec<Option<DataHandle>>, StageStats), SubmitError> {
        let root = rt.literal(StagePayload::root());
        let mut handles: Vec<Option<DataHandle>> = vec![None; plan.segments.len()];
        let mut stats = StageStats::default();
        for seg in &plan.segments {
            let parent = match seg.parent {
                Some(p) => match handles[p] {
                    Some(h) => h,
                    None => continue, // ancestor dropped by the gate
                },
                None => root,
            };
            if control.is_some_and(|c| !c.admit()) {
                break;
            }
            let sub = rt.submit_with(
                def,
                vec![
                    ArgSpec::In(rt.literal(seg.rep.clone())),
                    ArgSpec::In(rt.literal(seg.end)),
                    ArgSpec::In(rt.literal(seg.total_epochs)),
                    ArgSpec::In(parent),
                ],
                SubmitOpts { sim_duration_us: None },
            )?;
            handles[seg.id] = Some(sub.returns[0]);
            stats.segments += 1;
            stats.forks += usize::from(seg.parent.is_some());
            stats.staged_epochs += u64::from(seg.end - seg.start);
        }
        Ok((handles, stats))
    }

    /// Wait on every terminal segment of `plan` and reconstruct the trial
    /// results from the fork snapshots, keyed by input-config index.
    fn collect_plan(
        &self,
        rt: &Runtime,
        configs: &[Config],
        plan: &StagePlan,
        handles: &[Option<DataHandle>],
        stats: &mut StageStats,
    ) -> BTreeMap<usize, TrialResult> {
        let mut results = BTreeMap::new();
        for seg in &plan.segments {
            if seg.trials.is_empty() {
                continue;
            }
            let Some(h) = handles[seg.id] else { continue };
            let (outcome, task_us) = wait_stage(rt, &h);
            for &i in &seg.trials {
                stats.naive_epochs += u64::from(seg.end);
                results.insert(
                    i,
                    TrialResult { config: configs[i].clone(), outcome: outcome.clone(), task_us },
                );
            }
        }
        results
    }

    /// Run `configs` as a stage tree: shared training prefixes execute
    /// once and forks resume the parent snapshot, yet the report is
    /// bit-identical to [`HpoRunner::run`] over the same configs (same
    /// trials, same order, same outcomes — see [`crate::stagetree`] for
    /// the argument). Only history-independent algorithms qualify, since
    /// the whole sweep is planned up front ([`materialize`]).
    ///
    /// Returns the report plus the [`StageStats`] that fed the
    /// `hpo_stage_epochs_saved_total` / `hpo_prefix_forks_total` counters.
    pub fn run_staged(
        &self,
        rt: &Runtime,
        algo_name: &str,
        configs: &[Config],
        stage: &StageObjective,
        control: Option<&SweepControl>,
        mut observer: impl FnMut(&TrialResult),
    ) -> Result<(HpoReport, StageStats), SubmitError> {
        let def = stage_task_def(&self.opts, stage);
        let trial_metrics = TrialMetrics::new(rt);
        let plan = StagePlan::build(configs, None);
        let (handles, mut stats) = self.submit_plan(rt, &def, &plan, control)?;
        let results = self.collect_plan(rt, configs, &plan, &handles, &mut stats);
        // Emit in input-config order — the order the naive wave loop
        // reports a history-independent suggester's trials in.
        let mut history: Vec<TrialResult> = Vec::with_capacity(results.len());
        for trial in results.into_values() {
            if let Some(tm) = &trial_metrics {
                tm.observe(&trial);
            }
            observer(&trial);
            history.push(trial);
        }
        record_stage_metrics(rt, &stats);
        Ok((
            HpoReport {
                algorithm: algo_name.to_string(),
                trials: history,
                wall_us: rt.now_us(),
                early_stopped: false,
            },
            stats,
        ))
    }

    /// [`HpoRunner::run_successive_halving`] in ASHA-resume mode: rung 0
    /// runs as a stage tree over the sampled candidates (sharing prefixes
    /// *across* configs at the common budget), and every later rung
    /// resumes each promoted trial from its own previous-rung snapshot
    /// instead of retraining — each config's epochs are trained at most
    /// once along its deepest path (see
    /// [`Bracket::total_epochs_resumed`]). Cosine-schedule trials retrain
    /// from scratch each rung: their LR shape depends on the budget, so
    /// the previous rung's trajectory is not a prefix of the next.
    ///
    /// The report is bit-identical to the naive bracket (same sampling
    /// seed, same promotion order, same outcomes).
    pub fn run_successive_halving_staged(
        &self,
        rt: &Runtime,
        space: &SearchSpace,
        stage: &StageObjective,
        bracket: &Bracket,
        seed: u64,
    ) -> Result<(HpoReport, StageStats), SubmitError> {
        let def = stage_task_def(&self.opts, stage);
        let trial_metrics = TrialMetrics::new(rt);
        let mut sampler = RandomSearch::new(space, bracket.rungs[0].n_configs, seed);
        let mut candidates: Vec<Config> = Vec::new();
        while let Some(c) = sampler.suggest(&[]) {
            candidates.push(c);
        }

        let root = rt.literal(StagePayload::root());
        // Latest fork-snapshot handle per surviving config label.
        let mut snap_handles: HashMap<String, DataHandle> = HashMap::new();
        let mut history: Vec<TrialResult> = Vec::new();
        let mut stats = StageStats::default();
        let mut prev_budget: Option<u32> = None;
        for (i, rung) in bracket.rungs.iter().enumerate() {
            candidates.truncate(rung.n_configs);
            if candidates.is_empty() {
                break;
            }
            let mut rung_results: Vec<TrialResult> = if let Some(prev) = prev_budget {
                let subs: Vec<(Config, DataHandle)> = candidates
                    .iter()
                    .map(|c| {
                        let (parent, resumed) = match snap_handles.get(&c.label()) {
                            Some(h) if !is_cosine(c) => (*h, true),
                            _ => (root, false),
                        };
                        stats.segments += 1;
                        stats.forks += usize::from(resumed);
                        stats.staged_epochs +=
                            u64::from(if resumed { rung.budget - prev } else { rung.budget });
                        let sub = rt.submit_with(
                            &def,
                            vec![
                                ArgSpec::In(rt.literal(c.clone())),
                                ArgSpec::In(rt.literal(rung.budget)),
                                ArgSpec::In(rt.literal(rung.budget)),
                                ArgSpec::In(parent),
                            ],
                            SubmitOpts { sim_duration_us: None },
                        )?;
                        Ok((c.clone(), sub.returns[0]))
                    })
                    .collect::<Result<_, SubmitError>>()?;
                subs.into_iter()
                    .map(|(config, h)| {
                        snap_handles.insert(config.label(), h);
                        stats.naive_epochs += u64::from(rung.budget);
                        let (outcome, task_us) = wait_stage(rt, &h);
                        TrialResult { config, outcome, task_us }
                    })
                    .collect()
            } else {
                // Rung 0: a stage tree over all candidates at the rung
                // budget — configs differing only in late-binding params
                // collapse into shared (or even single) segments.
                let plan = StagePlan::build(&candidates, Some(rung.budget));
                let (handles, sub_stats) = self.submit_plan(rt, &def, &plan, None)?;
                stats.segments += sub_stats.segments;
                stats.forks += sub_stats.forks;
                stats.staged_epochs += sub_stats.staged_epochs;
                for seg in &plan.segments {
                    if let (false, Some(h)) = (seg.trials.is_empty(), handles[seg.id]) {
                        for &t in &seg.trials {
                            snap_handles.insert(candidates[t].label(), h);
                        }
                    }
                }
                let mut results = self.collect_plan(rt, &candidates, &plan, &handles, &mut stats);
                (0..candidates.len()).filter_map(|t| results.remove(&t)).collect()
            };
            for trial in &rung_results {
                if let Some(tm) = &trial_metrics {
                    tm.observe(trial);
                }
            }
            // Promotion — identical ordering and tie-breaking to the
            // naive bracket: rung results enter the (stable) sort in
            // candidate order.
            rung_results.sort_by(|a, b| b.outcome.accuracy.total_cmp(&a.outcome.accuracy));
            candidates = rung_results
                .iter()
                .filter(|t| !t.outcome.is_failed())
                .take(bracket.survivors_of(i))
                .map(|t| t.config.clone())
                .collect();
            history.extend(rung_results);
            prev_budget = Some(rung.budget);
        }
        record_stage_metrics(rt, &stats);
        Ok((
            HpoReport {
                algorithm: "successive-halving".to_string(),
                trials: history,
                wall_us: rt.now_us(),
                early_stopped: false,
            },
            stats,
        ))
    }
}

/// Wait on one stage segment and turn its fork payload into an outcome
/// (task failure or an undecodable payload becomes a failed trial, like
/// the naive collect path).
fn wait_stage(rt: &Runtime, h: &DataHandle) -> (TrialOutcome, u64) {
    match rt.wait_on(h) {
        Ok(v) => match v
            .downcast_ref::<StagePayload>()
            .and_then(|p| Some((TrainSnapshot::decode(&p.snapshot)?, p.task_us)))
        {
            Some((snap, task_us)) => (outcome_from_snapshot(&snap), task_us),
            None => (TrialOutcome::failed("stage task returned an undecodable payload"), 0),
        },
        Err(e) => (TrialOutcome::failed(e.to_string()), 0),
    }
}

/// Publish the stage counters onto the runtime's registry. Registered
/// even when nothing was saved, so a sweep that shared no prefixes still
/// exports explicit zeros.
fn record_stage_metrics(rt: &Runtime, stats: &StageStats) {
    if rt.metrics_enabled() {
        let reg = rt.metrics();
        reg.counter("hpo_stage_epochs_saved_total").add(stats.epochs_saved());
        reg.counter("hpo_prefix_forks_total").add(stats.forks as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::grid::GridSearch;
    use crate::algo::tpe::TpeSearch;
    use crate::early_stop::EarlyStop;
    use crate::space::ParamDomain;
    use rcompss::{RuntimeConfig, TaskError};
    use std::sync::Arc;

    /// A fast, deterministic synthetic objective: accuracy increases with
    /// epochs, Adam beats the others, bigger batches slightly worse.
    fn synthetic_objective() -> Objective {
        Arc::new(|config: &Config, budget: Option<u32>| {
            let epochs =
                budget.map(i64::from).or_else(|| config.get_int("num_epochs")).unwrap_or(10) as f64;
            let opt_bonus = match config.get_str("optimizer") {
                Some("Adam") => 0.15,
                Some("RMSprop") => 0.08,
                _ => 0.0,
            };
            let batch_penalty = config.get_int("batch_size").unwrap_or(64) as f64 / 4000.0;
            let acc = (0.5 + 0.003 * epochs + opt_bonus - batch_penalty).min(0.99);
            let curve: Vec<f64> = (1..=epochs as usize).map(|e| acc * e as f64 / epochs).collect();
            Ok(TrialOutcome {
                accuracy: acc,
                epochs_run: epochs as u32,
                epoch_accuracy: curve,
                epoch_loss: vec![],
                error: None,
            })
        })
    }

    #[test]
    fn grid_run_covers_all_27_configs() {
        let rt = Runtime::threaded(RuntimeConfig::single_node(8));
        let space = SearchSpace::paper_grid();
        let runner = HpoRunner::new(ExperimentOptions::default());
        let report = runner.run(&rt, &mut GridSearch::new(&space), synthetic_objective()).unwrap();
        assert_eq!(report.trials.len(), 27);
        assert_eq!(report.failures(), 0);
        let best = report.best().unwrap();
        assert_eq!(best.config.get_str("optimizer"), Some("Adam"));
        assert_eq!(best.config.get_int("num_epochs"), Some(100));
        assert_eq!(best.config.get_int("batch_size"), Some(32));
        assert_eq!(report.algorithm, "grid");
    }

    #[test]
    fn simulated_backend_runs_the_same_hpo() {
        let rt = Runtime::simulated(RuntimeConfig::single_node(8));
        let space = SearchSpace::paper_grid();
        let runner = HpoRunner::new(
            ExperimentOptions::default()
                .with_sim_duration(|c| 1_000 * c.get_int("num_epochs").unwrap_or(10) as u64),
        );
        let report = runner.run(&rt, &mut GridSearch::new(&space), synthetic_objective()).unwrap();
        assert_eq!(report.trials.len(), 27);
        // 27 tasks on 8 slots with heterogeneous durations: virtual time is
        // at least total_work/slots = (9*(20+50+100)*1000)/8
        assert!(report.wall_us >= 9 * 170 * 1000 / 8, "virtual {}", report.wall_us);
    }

    #[test]
    fn early_stop_cuts_waves() {
        let rt = Runtime::threaded(RuntimeConfig::single_node(4));
        let space = SearchSpace::paper_grid();
        let runner = HpoRunner::new(
            ExperimentOptions::default()
                .with_early_stop(EarlyStop::at_accuracy(0.55))
                // small waves so the stop can take effect
                .with_wave_size_for_tests(4),
        );
        let report = runner.run(&rt, &mut GridSearch::new(&space), synthetic_objective()).unwrap();
        assert!(report.early_stopped);
        assert!(report.trials.len() < 27, "stopped after {} trials", report.trials.len());
        assert!(report.trials.iter().any(|t| t.outcome.accuracy >= 0.55));
    }

    #[test]
    fn failing_configs_are_recorded_not_fatal() {
        let rt = Runtime::threaded(RuntimeConfig::single_node(4));
        let space =
            SearchSpace::new().with("optimizer", ParamDomain::choice_strs(&["Adam", "Broken"]));
        let objective: Objective = Arc::new(|config: &Config, _| {
            if config.get_str("optimizer") == Some("Broken") {
                Err(TaskError::new("unsupported optimizer"))
            } else {
                Ok(TrialOutcome::with_accuracy(0.8))
            }
        });
        let runner = HpoRunner::new(ExperimentOptions::default());
        let report = runner.run(&rt, &mut GridSearch::new(&space), objective).unwrap();
        assert_eq!(report.trials.len(), 2);
        assert_eq!(report.failures(), 1);
        assert_eq!(report.best().unwrap().config.get_str("optimizer"), Some("Adam"));
    }

    #[test]
    fn tpe_runs_in_batches_and_improves() {
        let rt = Runtime::threaded(RuntimeConfig::single_node(4));
        let space = SearchSpace::paper_grid();
        let mut tpe = TpeSearch::new(&space, 24, 5);
        let runner = HpoRunner::new(ExperimentOptions::default());
        let report = runner.run(&rt, &mut tpe, synthetic_objective()).unwrap();
        assert_eq!(report.trials.len(), 24);
        // late trials should be at least as good on average as early ones
        let avg = |ts: &[TrialResult]| {
            ts.iter().map(|t| t.outcome.accuracy).sum::<f64>() / ts.len() as f64
        };
        let early = avg(&report.trials[..8]);
        let late = avg(&report.trials[16..]);
        assert!(late >= early - 0.05, "TPE regressed: early {early:.3} late {late:.3}");
    }

    #[test]
    fn successive_halving_promotes_best_configs() {
        let rt = Runtime::threaded(RuntimeConfig::single_node(8));
        let space = SearchSpace::paper_grid();
        let runner = HpoRunner::new(ExperimentOptions::default());
        let bracket = Bracket::new(9, 5, 45, 3);
        let report = runner
            .run_successive_halving(&rt, &space, synthetic_objective(), &bracket, 11)
            .unwrap();
        // 9 at budget 5, 3 at 15, 1 at 45
        assert_eq!(report.trials.len(), 9 + 3 + 1);
        assert_eq!(report.algorithm, "successive-halving");
        // the final (largest-budget) evaluation is the overall best
        let final_trial = report.trials.last().unwrap();
        assert_eq!(final_trial.outcome.epochs_run, 45);
        let best = report.best().unwrap();
        assert_eq!(best.outcome.epochs_run, 45, "deep-budget run wins");
    }

    #[test]
    fn budget_is_passed_through_to_objective() {
        let rt = Runtime::threaded(RuntimeConfig::single_node(2));
        let space = SearchSpace::new().with("x", ParamDomain::choice_ints(&[1]));
        let seen = Arc::new(parking_lot::Mutex::new(Vec::<Option<u32>>::new()));
        let s = Arc::clone(&seen);
        let objective: Objective = Arc::new(move |_, budget| {
            s.lock().push(budget);
            Ok(TrialOutcome::with_accuracy(0.5))
        });
        let runner = HpoRunner::new(ExperimentOptions::default());
        let bracket = Bracket::new(1, 7, 7, 2);
        runner.run_successive_halving(&rt, &space, objective.clone(), &bracket, 0).unwrap();
        runner.run(&rt, &mut GridSearch::new(&space), objective).unwrap();
        let seen = seen.lock();
        assert_eq!(seen.as_slice(), &[Some(7), None]);
    }

    #[test]
    fn trial_metrics_land_in_the_runtime_registry() {
        let rt = Runtime::threaded(RuntimeConfig::single_node(4));
        let space =
            SearchSpace::new().with("optimizer", ParamDomain::choice_strs(&["Adam", "Broken"]));
        let objective: Objective = Arc::new(|config: &Config, _| {
            if config.get_str("optimizer") == Some("Broken") {
                Err(TaskError::new("unsupported optimizer"))
            } else {
                Ok(TrialOutcome::with_accuracy(0.8))
            }
        });
        let runner = HpoRunner::new(ExperimentOptions::default());
        runner.run(&rt, &mut GridSearch::new(&space), objective).unwrap();
        let snap = rt.metrics().snapshot();
        assert_eq!(snap.counter("hpo_trials_completed_total"), Some(1));
        assert_eq!(snap.counter("hpo_trials_failed_total"), Some(1));
        assert_eq!(snap.gauge("hpo_best_accuracy"), Some(0.8));
        assert_eq!(snap.histogram("hpo_trial_task_us").map(|h| h.count), Some(1));
        // The runtime's own instrumentation observed the same work: the
        // failing trial burns the full retry budget before giving up.
        assert_eq!(snap.counter("hpo_trials_completed_total").unwrap(), 1);
        assert!(snap.counter("rcompss_tasks_submitted_total").unwrap() >= 2);
        assert!(snap.counter("rcompss_tasks_retried_total").unwrap() >= 1);
        assert!(snap
            .histograms
            .iter()
            .any(|(name, h)| name.starts_with("rcompss_task_latency_us") && h.count >= 1));
    }

    #[test]
    fn run_observed_streams_every_trial() {
        let rt = Runtime::threaded(RuntimeConfig::single_node(4));
        let space = SearchSpace::paper_grid();
        let mut dash = crate::dashboard::Dashboard::new();
        let runner = HpoRunner::new(ExperimentOptions::default());
        let report = runner
            .run_observed(&rt, &mut GridSearch::new(&space), synthetic_objective(), |t| {
                dash.on_trial(t);
            })
            .unwrap();
        assert_eq!(dash.completed(), 27);
        assert_eq!(dash.best_accuracy(), report.best().unwrap().outcome.accuracy);
        let lb = crate::dashboard::leaderboard(&report, 3);
        assert_eq!(lb.lines().count(), 4);
        assert!(lb.lines().nth(1).unwrap().contains("Adam"));
    }

    impl ExperimentOptions {
        fn with_wave_size_for_tests(mut self, n: usize) -> Self {
            self.wave_size = Some(n);
            self
        }
    }
}
