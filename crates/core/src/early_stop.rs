//! Early stopping.
//!
//! The paper (§6.2): "For such task, early stopping is of paramount
//! significance as it makes no sense to continue with other tasks after one
//! has achieved the desired accuracy." Two levels are supported:
//!
//! * **within a trial** — stop training once the validation accuracy
//!   reaches the target, or stops improving for `patience` epochs;
//! * **across trials** — once any completed experiment reaches the target,
//!   the runner stops launching further waves.

/// Early-stopping criteria.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EarlyStop {
    /// Stop when validation accuracy reaches this value.
    pub target_accuracy: Option<f64>,
    /// Stop a trial after this many epochs without improvement.
    pub patience: Option<u32>,
}

impl EarlyStop {
    /// Target-accuracy criterion only.
    pub fn at_accuracy(target: f64) -> Self {
        EarlyStop { target_accuracy: Some(target), patience: None }
    }

    /// Patience criterion only.
    pub fn with_patience(epochs: u32) -> Self {
        EarlyStop { target_accuracy: None, patience: Some(epochs) }
    }

    /// Whether an accuracy satisfies the target.
    pub fn target_reached(&self, accuracy: f64) -> bool {
        self.target_accuracy.is_some_and(|t| accuracy >= t)
    }

    /// Build a per-epoch stopping judge for one trial.
    pub fn tracker(&self) -> EarlyStopTracker {
        EarlyStopTracker { criteria: *self, best: f64::NEG_INFINITY, since_best: 0 }
    }
}

/// Per-trial mutable state for epoch-by-epoch decisions.
#[derive(Debug, Clone)]
pub struct EarlyStopTracker {
    criteria: EarlyStop,
    best: f64,
    since_best: u32,
}

impl EarlyStopTracker {
    /// Observe one epoch's validation accuracy; returns `true` if training
    /// should stop now.
    pub fn observe(&mut self, accuracy: f64) -> bool {
        if self.criteria.target_reached(accuracy) {
            return true;
        }
        if accuracy > self.best {
            self.best = accuracy;
            self.since_best = 0;
        } else {
            self.since_best += 1;
        }
        self.criteria.patience.is_some_and(|p| self.since_best >= p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_stops_immediately_when_reached() {
        let mut t = EarlyStop::at_accuracy(0.9).tracker();
        assert!(!t.observe(0.5));
        assert!(!t.observe(0.89));
        assert!(t.observe(0.9));
        assert!(t.observe(0.95));
    }

    #[test]
    fn patience_counts_stagnant_epochs() {
        let mut t = EarlyStop::with_patience(2).tracker();
        assert!(!t.observe(0.5)); // best=0.5
        assert!(!t.observe(0.4)); // 1 stagnant
        assert!(t.observe(0.45)); // 2 stagnant → stop
    }

    #[test]
    fn improvement_resets_patience() {
        let mut t = EarlyStop::with_patience(2).tracker();
        assert!(!t.observe(0.5));
        assert!(!t.observe(0.4)); // 1
        assert!(!t.observe(0.6)); // new best, reset
        assert!(!t.observe(0.55)); // 1
        assert!(t.observe(0.50)); // 2 → stop
    }

    #[test]
    fn default_never_stops() {
        let mut t = EarlyStop::default().tracker();
        for i in 0..100 {
            assert!(!t.observe((i % 7) as f64 / 10.0));
        }
        assert!(!EarlyStop::default().target_reached(1.0));
    }

    #[test]
    fn combined_criteria_either_stops() {
        let es = EarlyStop { target_accuracy: Some(0.99), patience: Some(1) };
        let mut t = es.tracker();
        assert!(!t.observe(0.5));
        assert!(t.observe(0.5), "patience hit first");
        let mut t2 = es.tracker();
        assert!(t2.observe(0.99), "target hit first");
    }
}
