//! Blocking client for the sweep server ([`crate::server`]).
//!
//! One [`SweepClient`] is one tenant's connection: it introduces itself
//! with a [`Frame::ClientHello`] and then submits, watches, queries and
//! cancels sweeps over the same `rnet` frames the server speaks. The
//! `hpo-run` CLI subcommands (`submit`, `status`, `watch`, `cancel`) and
//! the integration tests are both thin wrappers over this type.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

use rnet::{read_frame, write_frame, Frame, FrameReader, LeaderRow};

/// A sweep request, mirroring [`Frame::SubmitSweep`].
#[derive(Debug, Clone)]
pub struct SubmitSpec {
    /// Display name for the sweep (labels its latency histogram).
    pub name: String,
    /// Search space as the usual hyperparameter JSON.
    pub space_json: String,
    /// Algorithm wire name: `grid`, `random`, `tpe` or `bayes`.
    pub algo: String,
    /// Trial budget for sampled algorithms (ignored by `grid`).
    pub trials: u32,
    /// RNG seed — same seed, same space, same algorithm ⇒ same trials.
    pub seed: u64,
    /// Requested wave size; `0` accepts the server default.
    pub wave: u32,
}

/// A point-in-time sweep status, mirroring [`Frame::SweepStatus`].
#[derive(Debug, Clone)]
pub struct SweepInfo {
    /// Server-assigned sweep id.
    pub sweep_id: u64,
    /// One of the `crate::server::SWEEP_*` codes.
    pub state: u32,
    /// Trials collected successfully.
    pub done: u32,
    /// Trials that failed.
    pub failed: u32,
    /// Planned trials (`0` when the algorithm's total is open-ended).
    pub total: u32,
    /// Best accuracy so far.
    pub best_acc: f64,
    /// Label of the best trial so far.
    pub best_label: String,
    /// Times this tenant's submissions were made to wait by the
    /// fair-share gate.
    pub throttled: u64,
}

/// Terminal sweep notification, mirroring [`Frame::SweepDone`].
#[derive(Debug, Clone)]
pub struct SweepEnd {
    /// The finished sweep.
    pub sweep_id: u64,
    /// Terminal `crate::server::SWEEP_*` code.
    pub state: u32,
    /// Wall-clock duration of the run phase, microseconds.
    pub wall_us: u64,
    /// Why it ended, when not the obvious reason (quota, cancel…).
    pub message: String,
}

/// A server-side refusal, mirroring [`Frame::SweepReject`].
#[derive(Debug, Clone)]
pub struct Reject {
    /// One of the `crate::server::REJECT_*` codes.
    pub code: u32,
    /// Operator-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rejected (code {}): {}", self.code, self.message)
    }
}

/// One tenant's blocking connection to a sweep server.
#[derive(Debug)]
pub struct SweepClient {
    stream: TcpStream,
    reader: FrameReader,
}

impl SweepClient {
    /// Connect to `addr` and introduce this connection as `tenant`.
    pub fn connect(addr: &str, tenant: &str) -> io::Result<SweepClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = SweepClient { stream, reader: FrameReader::new() };
        client.send(&Frame::ClientHello {
            tenant: tenant.to_string(),
            proto: rnet::VERSION as u32,
        })?;
        Ok(client)
    }

    /// Bound every subsequent read; `None` blocks forever.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame(&mut self.stream, frame)?;
        Ok(())
    }

    /// Read the next frame, blocking. EOF or garbage is an error — the
    /// server never half-closes a healthy conversation.
    pub fn next_frame(&mut self) -> io::Result<Frame> {
        match read_frame(&mut self.stream, &mut self.reader)? {
            Some(frame) => Ok(frame),
            None => {
                Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection"))
            }
        }
    }

    /// Read frames until a status or reject arrives, skipping interleaved
    /// leaderboard traffic for watched sweeps.
    fn next_answer(&mut self) -> io::Result<Result<SweepInfo, Reject>> {
        loop {
            match self.next_frame()? {
                Frame::SweepStatus {
                    sweep_id,
                    state,
                    done,
                    failed,
                    total,
                    best_acc,
                    best_label,
                    throttled,
                    ..
                } => {
                    return Ok(Ok(SweepInfo {
                        sweep_id,
                        state,
                        done,
                        failed,
                        total,
                        best_acc,
                        best_label,
                        throttled,
                    }))
                }
                Frame::SweepReject { code, message } => return Ok(Err(Reject { code, message })),
                _ => continue,
            }
        }
    }

    /// Submit a sweep; the connection is auto-subscribed to its events.
    pub fn submit(&mut self, spec: &SubmitSpec) -> io::Result<Result<SweepInfo, Reject>> {
        self.send(&Frame::SubmitSweep {
            name: spec.name.clone(),
            space_json: spec.space_json.clone(),
            algo: spec.algo.clone(),
            trials: spec.trials,
            seed: spec.seed,
            wave: spec.wave,
        })?;
        self.next_answer()
    }

    /// Query a sweep; `follow` additionally subscribes this connection
    /// to its live events (replaying the leaderboard so far).
    pub fn status(&mut self, sweep_id: u64, follow: bool) -> io::Result<Result<SweepInfo, Reject>> {
        self.send(&Frame::SweepStatus {
            sweep_id,
            state: 0,
            done: 0,
            failed: 0,
            total: 0,
            best_acc: 0.0,
            best_label: String::new(),
            throttled: 0,
            follow: u32::from(follow),
        })?;
        self.next_answer()
    }

    /// Ask the server to cancel a sweep; the acknowledging status comes
    /// back immediately, the terminal [`SweepEnd`] via the subscription.
    pub fn cancel(&mut self, sweep_id: u64) -> io::Result<Result<SweepInfo, Reject>> {
        self.send(&Frame::CancelSweep { sweep_id })?;
        self.next_answer()
    }

    /// Stream a subscribed sweep to completion: every leaderboard row
    /// goes through `on_row` (in completion order), and the terminal
    /// notification is returned.
    pub fn wait_done(
        &mut self,
        sweep_id: u64,
        mut on_row: impl FnMut(&LeaderRow),
    ) -> io::Result<SweepEnd> {
        loop {
            match self.next_frame()? {
                Frame::LeaderboardChunk { sweep_id: id, rows } if id == sweep_id => {
                    for row in &rows {
                        on_row(row);
                    }
                }
                Frame::SweepDone { sweep_id: id, state, wall_us, message } if id == sweep_id => {
                    return Ok(SweepEnd { sweep_id: id, state, wall_us, message });
                }
                _ => continue,
            }
        }
    }
}
