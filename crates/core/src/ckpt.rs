//! Sweep checkpointing: the durable journal and recovery state that make
//! an HPO run resumable (`hpo --resume <dir>`).
//!
//! A sweep writes three kinds of append-only records through a
//! [`SweepJournal`] (backed by `ckpt::Journal`, so every record is
//! CRC-framed and a torn tail is truncated, not fatal):
//!
//! * `Submitted` when a trial is handed to the runtime,
//! * `Epoch` each time a trial's model snapshot lands on disk,
//! * `Finished` with the full [`TrialOutcome`] when a trial completes.
//!
//! [`SweepState::recover`] replays the journal into "which trials
//! finished (with their exact outcomes) and which were in flight". The
//! runner skips the former — re-emitting the journaled outcome into the
//! report, so a resumed sweep's trial table is byte-identical to an
//! uninterrupted one — and re-enqueues the latter, which restart from
//! their latest model snapshot instead of epoch 0.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use rnet::{Reader, WireError};

use crate::experiment::TrialOutcome;
use crate::space::Config;
use crate::wire::{put_outcome, read_outcome};

/// Stable identity of a trial across runs: FNV-1a over the config label,
/// shifted right so bit 63 stays clear — the distributed backend reserves
/// the high bit of wire keys for snapshot traffic, and this key doubles
/// as the trial's snapshot key.
pub fn trial_key(config: &Config) -> u64 {
    let h = config
        .label()
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3));
    h >> 1
}

/// One record of the sweep journal.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepRecord {
    /// A trial was handed to the runtime.
    Submitted {
        /// The trial's [`trial_key`].
        key: u64,
        /// Human-readable config label (lets recovery report *what* was
        /// in flight without the original search space).
        label: String,
    },
    /// A trial's model snapshot reached durable storage.
    Epoch {
        /// The trial's [`trial_key`].
        key: u64,
        /// First epoch the snapshot's owner still has to run.
        epoch: u32,
    },
    /// A trial completed (successfully or permanently failed).
    Finished {
        /// The trial's [`trial_key`].
        key: u64,
        /// The exact outcome, replayed verbatim on resume.
        outcome: TrialOutcome,
        /// Task-side wall time, µs (part of the trial table).
        task_us: u64,
    },
}

impl SweepRecord {
    /// Serialise for [`SweepJournal::record`].
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            SweepRecord::Submitted { key, label } => {
                rnet::wire::put_u32(&mut b, 0);
                rnet::wire::put_u64(&mut b, *key);
                rnet::wire::put_str(&mut b, label);
            }
            SweepRecord::Epoch { key, epoch } => {
                rnet::wire::put_u32(&mut b, 1);
                rnet::wire::put_u64(&mut b, *key);
                rnet::wire::put_u32(&mut b, *epoch);
            }
            SweepRecord::Finished { key, outcome, task_us } => {
                rnet::wire::put_u32(&mut b, 2);
                rnet::wire::put_u64(&mut b, *key);
                put_outcome(&mut b, outcome);
                rnet::wire::put_u64(&mut b, *task_us);
            }
        }
        b
    }

    /// Parse one journal payload.
    pub fn decode(bytes: &[u8]) -> Result<SweepRecord, WireError> {
        let mut r = Reader::new(bytes);
        let rec = match r.u32()? {
            0 => SweepRecord::Submitted { key: r.u64()?, label: r.str()? },
            1 => SweepRecord::Epoch { key: r.u64()?, epoch: r.u32()? },
            2 => {
                let key = r.u64()?;
                let outcome = read_outcome(&mut r)?;
                SweepRecord::Finished { key, outcome, task_us: r.u64()? }
            }
            t => return Err(WireError(format!("unknown sweep record tag {t}"))),
        };
        Ok(rec)
    }
}

/// Thread-safe, cloneable handle on the sweep journal. The runner holds
/// one for `Submitted`/`Finished`; the checkpointed objective holds a
/// clone for `Epoch` records (same process — distributed workers journal
/// nothing, their snapshots travel through the runtime instead).
#[derive(Clone)]
pub struct SweepJournal(Arc<Mutex<ckpt::Journal>>);

impl SweepJournal {
    /// Open (or create) the journal at `path`, truncating any torn tail.
    pub fn open(path: impl AsRef<Path>) -> io::Result<SweepJournal> {
        Ok(SweepJournal(Arc::new(Mutex::new(ckpt::Journal::open(path)?))))
    }

    /// Append one record (fsynced before returning).
    pub fn record(&self, rec: &SweepRecord) -> io::Result<()> {
        self.0.lock().append(&rec.encode()).map(|_| ())
    }
}

impl std::fmt::Debug for SweepJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SweepJournal").field(&self.0.lock().path()).finish()
    }
}

/// What replaying a sweep journal yields.
#[derive(Debug, Default, Clone)]
pub struct SweepState {
    /// Trials that finished, with their journaled outcome and task time.
    pub complete: HashMap<u64, (TrialOutcome, u64)>,
    /// Trials submitted but never finished, in submission order.
    pub in_flight: Vec<u64>,
    /// Config labels seen in `Submitted` records.
    pub labels: HashMap<u64, String>,
    /// Highest journaled snapshot epoch per trial (resume floor).
    pub last_epoch: HashMap<u64, u32>,
    /// Whether the journal ended in a torn write (now truncated).
    pub tail_truncated: bool,
    /// CRC-clean records that nevertheless failed to parse (a newer or
    /// older journal format); they are skipped, not fatal.
    pub malformed: usize,
}

impl SweepState {
    /// Replay the journal at `path`. A missing file is an empty state —
    /// resuming into a fresh directory just runs the sweep from scratch.
    pub fn recover(path: impl AsRef<Path>) -> io::Result<SweepState> {
        let log = ckpt::JournalReader::recover(path)?;
        let mut state = SweepState { tail_truncated: log.tail_truncated, ..Default::default() };
        for payload in &log.records {
            match SweepRecord::decode(payload) {
                Ok(SweepRecord::Submitted { key, label }) => {
                    state.labels.insert(key, label);
                    if !state.complete.contains_key(&key) && !state.in_flight.contains(&key) {
                        state.in_flight.push(key);
                    }
                }
                Ok(SweepRecord::Epoch { key, epoch }) => {
                    let e = state.last_epoch.entry(key).or_default();
                    *e = (*e).max(epoch);
                }
                Ok(SweepRecord::Finished { key, outcome, task_us }) => {
                    state.in_flight.retain(|&k| k != key);
                    state.complete.insert(key, (outcome, task_us));
                }
                Err(_) => state.malformed += 1,
            }
        }
        Ok(state)
    }

    /// Journaled outcome for `config`, if it already finished.
    pub fn finished(&self, config: &Config) -> Option<&(TrialOutcome, u64)> {
        self.complete.get(&trial_key(config))
    }

    /// Whether `config` was in flight when the journal stopped.
    pub fn was_in_flight(&self, config: &Config) -> bool {
        self.in_flight.contains(&trial_key(config))
    }
}

/// Where and how often a sweep checkpoints. One directory holds both the
/// journal and the per-trial model snapshots:
///
/// ```text
/// <dir>/sweep.journal            append-only CRC-framed records
/// <dir>/snapshots/<key>/eN.snap  model + optimizer state at epoch N
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Root directory of the sweep's checkpoint state.
    pub dir: PathBuf,
    /// Snapshot the model every `every` epochs (0 = journal only, no
    /// model snapshots — a crash then restarts trials from epoch 0).
    pub every: u32,
    /// Snapshots kept per trial (older ones are pruned).
    pub retain: usize,
}

impl CheckpointSpec {
    /// Spec with the default cadence: snapshot every epoch, keep 2.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointSpec {
        CheckpointSpec { dir: dir.into(), every: 1, retain: 2 }
    }

    /// Set the snapshot cadence (chainable).
    pub fn with_every(mut self, every: u32) -> CheckpointSpec {
        self.every = every;
        self
    }

    /// Set the retention count (chainable).
    pub fn with_retain(mut self, retain: usize) -> CheckpointSpec {
        self.retain = retain;
        self
    }

    /// Path of the sweep journal.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("sweep.journal")
    }

    /// Open the journal (creating the directory as needed).
    pub fn journal(&self) -> io::Result<SweepJournal> {
        SweepJournal::open(self.journal_path())
    }

    /// Open the model-snapshot store.
    pub fn store(&self) -> io::Result<ckpt::DirStore> {
        ckpt::DirStore::open(self.dir.join("snapshots"), self.retain)
    }

    /// Replay whatever journal exists under this spec.
    pub fn recover(&self) -> io::Result<SweepState> {
        SweepState::recover(self.journal_path())
    }
}

/// What resuming actually did — feeds the dashboard banner and the exit
/// summary ("resumed sweep: X complete, Y re-enqueued").
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResumeStats {
    /// Trials skipped because the journal already has their outcome.
    pub skipped_complete: usize,
    /// Trials re-enqueued because they were in flight at the crash.
    pub reenqueued: usize,
}

impl ResumeStats {
    /// Whether this run resumed anything at all.
    pub fn resumed_any(&self) -> bool {
        self.skipped_complete > 0 || self.reenqueued > 0
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use proptest::prelude::*;

    use super::*;
    use crate::space::ConfigValue;

    fn cfg(opt: &str, epochs: i64) -> Config {
        Config::new()
            .with("optimizer", ConfigValue::Str(opt.into()))
            .with("num_epochs", ConfigValue::Int(epochs))
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hpo-ckpt-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn trial_keys_are_stable_distinct_and_63_bit() {
        let a = trial_key(&cfg("Adam", 10));
        let b = trial_key(&cfg("Adam", 10));
        let c = trial_key(&cfg("SGD", 10));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a & (1 << 63), 0, "bit 63 reserved for snapshot wire keys");
        assert_eq!(c & (1 << 63), 0);
    }

    #[test]
    fn records_round_trip() {
        let outcome = TrialOutcome {
            accuracy: 0.91,
            epoch_loss: vec![1.0, 0.4],
            epoch_accuracy: vec![0.6, 0.91],
            epochs_run: 2,
            error: None,
        };
        let records = vec![
            SweepRecord::Submitted { key: 7, label: "optimizer=Adam".into() },
            SweepRecord::Epoch { key: 7, epoch: 3 },
            SweepRecord::Finished { key: 7, outcome, task_us: 1234 },
            SweepRecord::Finished { key: 9, outcome: TrialOutcome::failed("nan"), task_us: 0 },
        ];
        for rec in &records {
            assert_eq!(&SweepRecord::decode(&rec.encode()).unwrap(), rec);
        }
        assert!(SweepRecord::decode(&[9, 0, 0, 0]).is_err(), "unknown tag rejected");
        assert!(SweepRecord::decode(&[]).is_err(), "empty payload rejected");
    }

    #[test]
    fn journal_replay_reconstructs_sweep_state() {
        let dir = tmpdir("replay");
        let spec = CheckpointSpec::new(&dir);
        let j = spec.journal().unwrap();
        j.record(&SweepRecord::Submitted { key: 1, label: "a".into() }).unwrap();
        j.record(&SweepRecord::Submitted { key: 2, label: "b".into() }).unwrap();
        j.record(&SweepRecord::Epoch { key: 2, epoch: 1 }).unwrap();
        j.record(&SweepRecord::Epoch { key: 2, epoch: 4 }).unwrap();
        j.record(&SweepRecord::Finished {
            key: 1,
            outcome: TrialOutcome::with_accuracy(0.5),
            task_us: 10,
        })
        .unwrap();
        drop(j);

        let state = spec.recover().unwrap();
        assert_eq!(state.complete.len(), 1);
        assert_eq!(state.complete[&1].0.accuracy, 0.5);
        assert_eq!(state.in_flight, vec![2], "submitted-but-unfinished");
        assert_eq!(state.last_epoch[&2], 4, "highest snapshot epoch wins");
        assert_eq!(state.labels[&2], "b");
        assert!(!state.tail_truncated);
        assert_eq!(state.malformed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_survivable_and_reopen_continues() {
        let dir = tmpdir("torn");
        let spec = CheckpointSpec::new(&dir);
        let j = spec.journal().unwrap();
        j.record(&SweepRecord::Submitted { key: 5, label: "x".into() }).unwrap();
        j.record(&SweepRecord::Epoch { key: 5, epoch: 2 }).unwrap();
        drop(j);
        // Simulate a crash mid-append: chop bytes off the file tail.
        let path = spec.journal_path();
        let len = std::fs::metadata(&path).unwrap().len();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..len as usize - 3]).unwrap();

        let state = spec.recover().unwrap();
        assert!(state.tail_truncated);
        assert_eq!(state.in_flight, vec![5], "clean prefix fully recovered");
        assert!(state.last_epoch.is_empty(), "torn epoch record dropped");

        // Re-opening truncates the torn tail and appends cleanly after it.
        let j = spec.journal().unwrap();
        j.record(&SweepRecord::Finished {
            key: 5,
            outcome: TrialOutcome::with_accuracy(0.9),
            task_us: 3,
        })
        .unwrap();
        drop(j);
        let state = spec.recover().unwrap();
        assert!(state.in_flight.is_empty());
        assert_eq!(state.complete[&5].0.accuracy, 0.9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn state_lookups_by_config() {
        let a = cfg("Adam", 3);
        let b = cfg("SGD", 3);
        let mut state = SweepState::default();
        state.complete.insert(trial_key(&a), (TrialOutcome::with_accuracy(0.7), 9));
        state.in_flight.push(trial_key(&b));
        assert_eq!(state.finished(&a).unwrap().0.accuracy, 0.7);
        assert!(state.finished(&b).is_none());
        assert!(state.was_in_flight(&b));
        assert!(!state.was_in_flight(&a));
    }

    #[test]
    fn resume_stats_banner_gate() {
        assert!(!ResumeStats::default().resumed_any());
        assert!(ResumeStats { skipped_complete: 1, reenqueued: 0 }.resumed_any());
        assert!(ResumeStats { skipped_complete: 0, reenqueued: 2 }.resumed_any());
    }

    /// `trial_key` identity IS label identity — `SweepState::finished`
    /// resolves a config to `complete.get(&trial_key(config))` and nothing
    /// else. Two sides of that coin:
    ///
    /// * configs with the *same* label always share a key (`Config` keeps
    ///   its values in a `BTreeMap`, so insertion order is irrelevant) —
    ///   that is the designed collision the resume path depends on;
    /// * a 63-bit FNV collision between two *different* labels would
    ///   alias the trials: the journal cannot tell them apart, so
    ///   `finished` would hand the second trial the first one's outcome
    ///   and `--resume` would silently skip retraining it. The proptest
    ///   below pins that this does not happen on realistic grids.
    #[test]
    fn key_collision_would_alias_trials() {
        let a = cfg("Adam", 3);
        let mut state = SweepState::default();
        state.complete.insert(trial_key(&a), (TrialOutcome::with_accuracy(0.9), 7));

        // Same label via a different insertion order: same key, reported
        // finished — the collision the resume path is built on.
        let a2 = Config::new()
            .with("num_epochs", ConfigValue::Int(3))
            .with("optimizer", ConfigValue::Str("Adam".into()));
        assert_eq!(trial_key(&a), trial_key(&a2));
        assert_eq!(state.finished(&a2).unwrap().0.accuracy, 0.9);

        // A forged cross-label collision (what an FNV collision would do):
        // journal b's outcome under c's key and c looks finished despite
        // never having run. The journal has no second discriminator.
        let c = cfg("SGD", 99);
        state.complete.insert(trial_key(&c), (TrialOutcome::with_accuracy(0.1), 1));
        assert_eq!(state.finished(&c).unwrap().0.accuracy, 0.1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Distinct configs from a realistic grid — optimizer × epochs ×
        /// batch size × learning rate, every axis randomly chosen — never
        /// collide on `trial_key`. Distinct value sets give distinct
        /// labels (the f64 `Display` is shortest-round-trip, so distinct
        /// floats print distinctly), so this exercises the 63-bit FNV
        /// itself on grids up to a few hundred configs.
        #[test]
        fn distinct_grid_configs_never_collide(
            opts in prop::collection::btree_set(0usize..6, 1..4),
            epochs in prop::collection::btree_set(1i64..500, 1..5),
            batches in prop::collection::btree_set(1i64..1024, 1..4),
            lrs in prop::collection::btree_set(1u32..10_000, 1..4),
        ) {
            const OPT_NAMES: [&str; 6] = ["Adam", "SGD", "RMSprop", "Adagrad", "Momentum", "Nadam"];
            let mut seen: HashMap<u64, String> = HashMap::new();
            for &o in &opts {
                for &e in &epochs {
                    for &b in &batches {
                        for &lr in &lrs {
                            let c = Config::new()
                                .with("optimizer", ConfigValue::Str(OPT_NAMES[o].into()))
                                .with("num_epochs", ConfigValue::Int(e))
                                .with("batch_size", ConfigValue::Int(b))
                                .with(
                                    "learning_rate",
                                    ConfigValue::Float(f64::from(lr) / 16384.0),
                                );
                            let key = trial_key(&c);
                            prop_assert!(key & (1 << 63) == 0, "bit 63 must stay clear");
                            if let Some(prev) = seen.insert(key, c.label()) {
                                prop_assert!(
                                    false,
                                    "trial_key collision: '{prev}' and '{}' both hash to {key:#x}",
                                    c.label()
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
