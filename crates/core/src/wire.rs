//! Wire codecs and the shared experiment task for distributed HPO.
//!
//! A distributed run ships [`Config`]s to workers and `(TrialOutcome,
//! task_us)` payloads back, so both ends must register codecs for them
//! (see [`rcompss::register_codec`]) and agree on the experiment task
//! body by name. The driver calls [`register_hpo_codecs`] before building
//! the runtime; an `rcompss-worker` process calls it too, then registers
//! [`experiment_task_def`] built from the *same* objective — mirroring how
//! PyCOMPSs workers import the user's Python module so the decorated
//! function exists on both sides.

use std::sync::Arc;
use std::time::Instant;

use rcompss::{register_codec, TaskDef, TaskError, Value};
use rnet::{Reader, WireError};

use crate::experiment::{ExperimentOptions, Objective, TrialOutcome};
use crate::space::{Config, ConfigValue};
use crate::stagetree::StagePayload;

/// What the experiment task returns through the data registry: the trial
/// outcome plus the task-side wall time in microseconds.
pub type TaskPayload = (TrialOutcome, u64);

fn put_vec_f64(b: &mut Vec<u8>, v: &[f64]) {
    rnet::wire::put_u64(b, v.len() as u64);
    for x in v {
        rnet::wire::put_f64(b, *x);
    }
}

fn read_vec_f64(r: &mut Reader<'_>) -> Result<Vec<f64>, WireError> {
    let n = r.u64()? as usize;
    if n > r.remaining() {
        return Err(WireError("f64 vector length exceeds payload".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.f64()?);
    }
    Ok(out)
}

/// Serialise a [`TrialOutcome`] into `b` — the shared layout of the
/// `hpo.trial` codec and the sweep journal's `Finished` records (see
/// [`crate::ckpt`]), so a journaled outcome replays byte-for-byte.
pub(crate) fn put_outcome(b: &mut Vec<u8>, outcome: &TrialOutcome) {
    rnet::wire::put_f64(b, outcome.accuracy);
    put_vec_f64(b, &outcome.epoch_loss);
    put_vec_f64(b, &outcome.epoch_accuracy);
    rnet::wire::put_u32(b, outcome.epochs_run);
    match &outcome.error {
        Some(e) => {
            rnet::wire::put_u32(b, 1);
            rnet::wire::put_str(b, e);
        }
        None => rnet::wire::put_u32(b, 0),
    }
}

/// Inverse of [`put_outcome`].
pub(crate) fn read_outcome(r: &mut Reader<'_>) -> Result<TrialOutcome, WireError> {
    let accuracy = r.f64()?;
    let epoch_loss = read_vec_f64(r)?;
    let epoch_accuracy = read_vec_f64(r)?;
    let epochs_run = r.u32()?;
    let error = match r.u32()? {
        0 => None,
        1 => Some(r.str()?),
        t => return Err(WireError(format!("unknown error tag {t}"))),
    };
    Ok(TrialOutcome { accuracy, epoch_loss, epoch_accuracy, epochs_run, error })
}

/// Register the HPO-layer codecs (idempotent; call freely).
///
/// Tags: `hpo.config` for [`Config`], `hpo.trial` for [`TaskPayload`],
/// `hpo.stage` for [`StagePayload`] (stage-tree fork snapshots, which ride
/// the content-addressed block plane like any other task output).
pub fn register_hpo_codecs() {
    register_codec::<Config, _, _>(
        "hpo.config",
        |cfg| {
            let mut b = Vec::new();
            let entries: Vec<(&str, &ConfigValue)> = cfg.iter().collect();
            rnet::wire::put_u64(&mut b, entries.len() as u64);
            for (key, value) in entries {
                rnet::wire::put_str(&mut b, key);
                match value {
                    ConfigValue::Str(s) => {
                        rnet::wire::put_u32(&mut b, 0);
                        rnet::wire::put_str(&mut b, s);
                    }
                    ConfigValue::Int(i) => {
                        rnet::wire::put_u32(&mut b, 1);
                        rnet::wire::put_u64(&mut b, *i as u64);
                    }
                    ConfigValue::Float(f) => {
                        rnet::wire::put_u32(&mut b, 2);
                        rnet::wire::put_f64(&mut b, *f);
                    }
                }
            }
            b
        },
        |bytes| {
            let mut r = Reader::new(bytes);
            let n = r.u64()? as usize;
            if n > bytes.len() {
                return Err(WireError("config entry count exceeds payload".into()));
            }
            let mut cfg = Config::new();
            for _ in 0..n {
                let key = r.str()?;
                let value = match r.u32()? {
                    0 => ConfigValue::Str(r.str()?),
                    1 => ConfigValue::Int(r.u64()? as i64),
                    2 => ConfigValue::Float(r.f64()?),
                    t => return Err(WireError(format!("unknown config value tag {t}"))),
                };
                cfg.set(&key, value);
            }
            Ok(cfg)
        },
    );

    register_codec::<TaskPayload, _, _>(
        "hpo.trial",
        |(outcome, task_us)| {
            let mut b = Vec::new();
            put_outcome(&mut b, outcome);
            rnet::wire::put_u64(&mut b, *task_us);
            b
        },
        |bytes| {
            let mut r = Reader::new(bytes);
            let outcome = read_outcome(&mut r)?;
            let task_us = r.u64()?;
            Ok((outcome, task_us))
        },
    );

    register_codec::<StagePayload, _, _>(
        "hpo.stage",
        |payload| {
            let mut b = Vec::new();
            rnet::wire::put_bytes(&mut b, &payload.snapshot);
            rnet::wire::put_u64(&mut b, payload.task_us);
            b
        },
        |bytes| {
            let mut r = Reader::new(bytes);
            let snapshot = r.bytes()?.to_vec();
            let task_us = r.u64()?;
            Ok(StagePayload { snapshot, task_us })
        },
    );
}

/// The experiment task definition both ends agree on.
///
/// The body runs the objective under a `tinyml::par::with_threads` scope
/// sized by the placement's core grant (`TaskContext::parallelism`), so a
/// task constrained to N CPUs really trains on N worker threads. The
/// driver submits by this def; a worker registers the identical def (same
/// `opts.task_name`, same objective) in its task registry.
pub fn experiment_task_def(opts: &ExperimentOptions, objective: &Objective) -> TaskDef {
    let obj = Arc::clone(objective);
    TaskDef {
        name: opts.task_name.as_str().into(),
        constraint: opts.constraint,
        returns: 1,
        priority: false,
        body: Arc::new(move |ctx: &rcompss::TaskContext, inputs: &[Value]| {
            let config = inputs[0]
                .downcast_ref::<Config>()
                .ok_or_else(|| TaskError::new("experiment input 0 must be a Config"))?;
            let budget = inputs[1]
                .downcast_ref::<Option<u32>>()
                .copied()
                .ok_or_else(|| TaskError::new("experiment input 1 must be Option<u32>"))?;
            let t0 = Instant::now();
            let outcome = tinyml::par::with_threads(ctx.parallelism(), || obj(config, budget))?;
            let payload: TaskPayload = (outcome, t0.elapsed().as_micros() as u64);
            Ok(vec![Value::new(payload)])
        }),
        alternatives: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) -> Value {
        let blob = rcompss::codec::encode_value(&v).expect("codec registered");
        rcompss::codec::decode_value(&blob).expect("decodes")
    }

    #[test]
    fn config_codec_roundtrips_all_value_kinds() {
        register_hpo_codecs();
        let cfg = Config::new()
            .with("optimizer", ConfigValue::Str("Adam".into()))
            .with("epochs", ConfigValue::Int(30))
            .with("lr", ConfigValue::Float(1e-3));
        let got = roundtrip(Value::new(cfg.clone()));
        assert_eq!(got.downcast_ref::<Config>(), Some(&cfg));
    }

    #[test]
    fn trial_payload_codec_roundtrips() {
        register_hpo_codecs();
        let outcome = TrialOutcome {
            accuracy: 0.93,
            epoch_loss: vec![1.5, 0.7, 0.3],
            epoch_accuracy: vec![0.5, 0.8, 0.93],
            epochs_run: 3,
            error: None,
        };
        let payload: TaskPayload = (outcome.clone(), 12_345);
        let got = roundtrip(Value::new(payload));
        let (o, us) = got.downcast_ref::<TaskPayload>().expect("payload type");
        assert_eq!(o, &outcome);
        assert_eq!(*us, 12_345);
    }

    #[test]
    fn stage_payload_codec_roundtrips() {
        register_hpo_codecs();
        let payload = StagePayload { snapshot: vec![0, 1, 2, 255, 7], task_us: 99 };
        let got = roundtrip(Value::new(payload.clone()));
        assert_eq!(got.downcast_ref::<StagePayload>(), Some(&payload));
        let root = roundtrip(Value::new(StagePayload::root()));
        assert_eq!(root.downcast_ref::<StagePayload>(), Some(&StagePayload::root()));
    }

    #[test]
    fn failed_trial_payload_keeps_error_text() {
        register_hpo_codecs();
        let payload: TaskPayload = (TrialOutcome::failed("diverged"), 7);
        let got = roundtrip(Value::new(payload));
        let (o, _) = got.downcast_ref::<TaskPayload>().unwrap();
        assert_eq!(o.error.as_deref(), Some("diverged"));
    }

    #[test]
    fn experiment_task_def_runs_objective_locally() {
        let objective: Objective = Arc::new(|config, budget| {
            let lr = config.get_float("lr").unwrap_or(0.0);
            assert_eq!(budget, Some(2));
            Ok(TrialOutcome::with_accuracy(lr * 10.0))
        });
        let def = experiment_task_def(&ExperimentOptions::default(), &objective);
        let ctx = rcompss::TaskContext {
            task: rcompss::TaskId(1),
            attempt: 1,
            node: 0,
            cores: vec![0],
            gpus: vec![],
            peer_nodes: vec![],
            simulated: false,
        };
        let cfg = Config::new().with("lr", ConfigValue::Float(0.05));
        let inputs = vec![Value::new(cfg), Value::new(Some(2u32))];
        let out = (def.body)(&ctx, &inputs).expect("objective runs");
        let (outcome, _) = out[0].downcast_ref::<TaskPayload>().unwrap();
        assert!((outcome.accuracy - 0.5).abs() < 1e-12);
    }
}
