//! Trial results, reports, and the plotting step of the paper's workflow
//! ("When all tasks are completed, we plot the graphs showing the
//! performance of each experiment", §4).

use crate::experiment::TrialOutcome;
use crate::space::Config;

/// One completed (or failed) trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// The configuration evaluated.
    pub config: Config,
    /// What came back.
    pub outcome: TrialOutcome,
    /// Task time, µs (wall inside the task, or simulated duration).
    pub task_us: u64,
}

impl TrialResult {
    /// One-line description.
    pub fn label(&self) -> String {
        format!("{} -> {:.4}", self.config.label(), self.outcome.accuracy)
    }
}

/// The full result of one HPO run.
#[derive(Debug, Clone, Default)]
pub struct HpoReport {
    /// Algorithm name.
    pub algorithm: String,
    /// All trials in completion order.
    pub trials: Vec<TrialResult>,
    /// End-to-end time of the whole optimisation, µs (wall or virtual).
    pub wall_us: u64,
    /// Whether the run was cut short by across-trial early stopping.
    pub early_stopped: bool,
}

impl HpoReport {
    /// The best successful trial by accuracy.
    pub fn best(&self) -> Option<&TrialResult> {
        self.trials
            .iter()
            .filter(|t| !t.outcome.is_failed())
            .max_by(|a, b| a.outcome.accuracy.total_cmp(&b.outcome.accuracy))
    }

    /// Number of successful trials.
    pub fn successes(&self) -> usize {
        self.trials.iter().filter(|t| !t.outcome.is_failed()).count()
    }

    /// Number of failed trials.
    pub fn failures(&self) -> usize {
        self.trials.len() - self.successes()
    }

    /// Trials needed to first reach `target` accuracy, if ever reached —
    /// the random-vs-grid efficiency metric of Bergstra & Bengio.
    pub fn trials_to_reach(&self, target: f64) -> Option<usize> {
        self.trials.iter().position(|t| t.outcome.accuracy >= target).map(|i| i + 1)
    }

    /// CSV rows: `config,accuracy,epochs_run,task_us,error`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("config,accuracy,epochs_run,task_us,error\n");
        for t in &self.trials {
            out.push_str(&format!(
                "\"{}\",{:.6},{},{},{}\n",
                t.config.label(),
                t.outcome.accuracy,
                t.outcome.epochs_run,
                t.task_us,
                t.outcome.error.as_deref().unwrap_or("")
            ));
        }
        out
    }

    /// ASCII rendering of the per-epoch validation-accuracy curves — the
    /// textual analogue of the paper's Figures 7 and 8. One row per
    /// accuracy band, epochs along the X axis; each trial draws with its
    /// own glyph, listed in the legend below the chart.
    pub fn ascii_curves(&self, width: usize, height: usize) -> String {
        const GLYPHS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
        let curves: Vec<(&TrialResult, &[f64])> = self
            .trials
            .iter()
            .filter(|t| !t.outcome.epoch_accuracy.is_empty())
            .map(|t| (t, t.outcome.epoch_accuracy.as_slice()))
            .collect();
        if curves.is_empty() {
            return String::from("(no curves)\n");
        }
        let max_epochs = curves.iter().map(|(_, c)| c.len()).max().unwrap_or(1);
        let width = width.max(10);
        let height = height.max(5);
        let mut grid = vec![vec![' '; width]; height];
        for (i, (_, curve)) in curves.iter().enumerate() {
            let glyph = GLYPHS[i % GLYPHS.len()] as char;
            for (e, &acc) in curve.iter().enumerate() {
                let x = if max_epochs <= 1 { 0 } else { e * (width - 1) / (max_epochs - 1) };
                let y = ((1.0 - acc.clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
                grid[y.min(height - 1)][x.min(width - 1)] = glyph;
            }
        }
        let mut out = String::new();
        for (row, line) in grid.iter().enumerate() {
            let acc_label = 1.0 - row as f64 / (height - 1) as f64;
            out.push_str(&format!("{acc_label:>5.2} |"));
            out.extend(line.iter());
            out.push('\n');
        }
        out.push_str(&format!("      +{}\n", "-".repeat(width)));
        out.push_str(&format!("       epochs 1..{max_epochs}\n"));
        for (i, (t, _)) in curves.iter().enumerate() {
            out.push_str(&format!(
                "  {} = {} (final {:.3})\n",
                GLYPHS[i % GLYPHS.len()] as char,
                t.config.label(),
                t.outcome.accuracy
            ));
        }
        out
    }

    /// Cross-tabulate final accuracy over two hyperparameter axes,
    /// averaging over everything else — a compact numeric view of the
    /// grid figures (rows = values of `row_key`, columns = `col_key`).
    pub fn accuracy_table(&self, row_key: &str, col_key: &str) -> String {
        use std::collections::BTreeMap;
        let mut cells: BTreeMap<(String, String), (f64, usize)> = BTreeMap::new();
        for t in self.trials.iter().filter(|t| !t.outcome.is_failed()) {
            let (Some(r), Some(c)) = (t.config.get(row_key), t.config.get(col_key)) else {
                continue;
            };
            let e = cells.entry((r.to_string(), c.to_string())).or_insert((0.0, 0));
            e.0 += t.outcome.accuracy;
            e.1 += 1;
        }
        if cells.is_empty() {
            return format!("(no data for {row_key} × {col_key})\n");
        }
        let mut rows: Vec<String> = cells.keys().map(|(r, _)| r.clone()).collect();
        rows.dedup();
        let mut cols: Vec<String> = cells.keys().map(|(_, c)| c.clone()).collect();
        cols.sort();
        cols.dedup();
        let mut out = format!("{:>12}", format!("{row_key}\\{col_key}"));
        for c in &cols {
            out.push_str(&format!(" {c:>8}"));
        }
        out.push('\n');
        for r in &rows {
            out.push_str(&format!("{r:>12}"));
            for c in &cols {
                match cells.get(&(r.clone(), c.clone())) {
                    Some(&(sum, n)) => out.push_str(&format!(" {:>8.3}", sum / n as f64)),
                    None => out.push_str(&format!(" {:>8}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Short human summary.
    pub fn summary(&self) -> String {
        let best = self.best().map(|t| t.label()).unwrap_or_else(|| "none".to_string());
        format!(
            "{}: {} trials ({} failed), best {} in {:.1}s{}",
            self.algorithm,
            self.trials.len(),
            self.failures(),
            best,
            self.wall_us as f64 / 1e6,
            if self.early_stopped { " [early-stopped]" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ConfigValue;

    fn trial(opt: &str, acc: f64, curve: Vec<f64>) -> TrialResult {
        TrialResult {
            config: Config::new().with("optimizer", ConfigValue::Str(opt.into())),
            outcome: TrialOutcome {
                accuracy: acc,
                epoch_accuracy: curve,
                epochs_run: 3,
                ..Default::default()
            },
            task_us: 1000,
        }
    }

    fn report() -> HpoReport {
        HpoReport {
            algorithm: "grid".into(),
            trials: vec![
                trial("SGD", 0.6, vec![0.2, 0.4, 0.6]),
                trial("Adam", 0.9, vec![0.5, 0.8, 0.9]),
                TrialResult {
                    config: Config::new().with("optimizer", ConfigValue::Str("RMSprop".into())),
                    outcome: TrialOutcome::failed("crashed"),
                    task_us: 10,
                },
            ],
            wall_us: 2_000_000,
            early_stopped: false,
        }
    }

    #[test]
    fn best_ignores_failures() {
        let r = report();
        assert_eq!(r.best().unwrap().config.get_str("optimizer"), Some("Adam"));
        assert_eq!(r.successes(), 2);
        assert_eq!(r.failures(), 1);
    }

    #[test]
    fn trials_to_reach_counts_inclusive() {
        let r = report();
        assert_eq!(r.trials_to_reach(0.5), Some(1));
        assert_eq!(r.trials_to_reach(0.7), Some(2));
        assert_eq!(r.trials_to_reach(0.95), None);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("config,accuracy"));
        assert!(lines[2].contains("Adam"));
        assert!(lines[3].contains("crashed"));
    }

    #[test]
    fn ascii_curves_plot_every_trial_with_curves() {
        let s = report().ascii_curves(30, 10);
        assert!(s.contains('A'), "first curve glyph:\n{s}");
        assert!(s.contains('B'), "second curve glyph:\n{s}");
        assert!(!s.contains("C ="), "failed trial has no curve");
        assert!(s.contains("epochs 1..3"));
        assert!(s.contains("optimizer=Adam"));
        // top row is accuracy 1.00, bottom 0.00
        assert!(s.starts_with(" 1.00 |"));
    }

    #[test]
    fn ascii_curves_empty_report() {
        let r = HpoReport::default();
        assert_eq!(r.ascii_curves(40, 10), "(no curves)\n");
        assert!(r.best().is_none());
    }

    #[test]
    fn summary_mentions_algorithm_and_best() {
        let s = report().summary();
        assert!(s.contains("grid"));
        assert!(s.contains("3 trials (1 failed)"));
        assert!(s.contains("Adam"));
        let mut r = report();
        r.early_stopped = true;
        assert!(r.summary().contains("early-stopped"));
    }

    #[test]
    fn accuracy_table_cross_tabulates() {
        let mk = |opt: &str, e: i64, acc: f64| TrialResult {
            config: Config::new()
                .with("optimizer", ConfigValue::Str(opt.into()))
                .with("num_epochs", ConfigValue::Int(e)),
            outcome: TrialOutcome::with_accuracy(acc),
            task_us: 0,
        };
        let r = HpoReport {
            algorithm: "grid".into(),
            trials: vec![
                mk("Adam", 20, 0.8),
                mk("Adam", 20, 0.9), // averaged with the one above → 0.85
                mk("Adam", 50, 0.95),
                mk("SGD", 20, 0.6),
            ],
            wall_us: 0,
            early_stopped: false,
        };
        let t = r.accuracy_table("optimizer", "num_epochs");
        assert!(t.contains("0.850"), "{t}");
        assert!(t.contains("0.950"), "{t}");
        assert!(t.contains("0.600"), "{t}");
        let sgd_row = t.lines().find(|l| l.contains("SGD")).unwrap();
        assert!(sgd_row.contains('-'), "missing cell rendered as dash: {sgd_row}");
        // unknown keys degrade gracefully
        assert!(r.accuracy_table("nope", "num_epochs").contains("no data"));
    }

    #[test]
    fn label_formats() {
        let t = trial("Adam", 0.87654, vec![]);
        assert_eq!(t.label(), "optimizer=Adam -> 0.8765");
    }
}
