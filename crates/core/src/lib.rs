//! `hpo` — the paper's contribution: a hyperparameter-optimisation scheme on
//! top of a task-based distributed runtime.
//!
//! The structure follows the paper's §4 exactly:
//!
//! 1. the **application** receives a JSON file listing hyperparameters and
//!    their values ([`config::json`], [`space::SearchSpace`]);
//! 2. a search algorithm expands it into concrete *configs*
//!    ([`algo::grid`], [`algo::random`], plus the future-work algorithms the
//!    paper's §7 promises: [`algo::tpe`], [`algo::hyperband`]);
//! 3. each config becomes an **experiment** — one training task submitted to
//!    the `rcompss` runtime with a resource constraint
//!    ([`experiment`], [`runner::HpoRunner`]);
//! 4. results are synchronised with `wait_on`, collected, and plotted
//!    ([`results`]), with optional early stopping ([`early_stop`]) — "the
//!    process can be stopped as soon as one task achieves a specified
//!    accuracy".
//!
//! # Quick start
//!
//! ```
//! use hpo::prelude::*;
//!
//! let space = SearchSpace::from_json(r#"{
//!     "optimizer": ["Adam", "SGD"],
//!     "num_epochs": [2, 3],
//!     "batch_size": [32]
//! }"#).unwrap();
//!
//! let rt = rcompss::Runtime::threaded(rcompss::RuntimeConfig::single_node(4));
//! let data = std::sync::Arc::new(tinyml::Dataset::synthetic_mnist(400, 1));
//! let objective = hpo::experiment::tinyml_objective(data, vec![16]);
//! let runner = HpoRunner::new(ExperimentOptions::default());
//! let report = runner.run(&rt, &mut GridSearch::new(&space), objective).unwrap();
//! assert_eq!(report.trials.len(), 4);
//! println!("best: {}", report.best().unwrap().label());
//! ```

#![warn(missing_docs)]

pub mod algo;
pub mod ckpt;
pub mod client;
pub mod config;
pub mod dashboard;
pub mod early_stop;
pub mod experiment;
pub mod results;
pub mod runner;
pub mod server;
pub mod space;
pub mod stagetree;
pub mod wire;

/// Convenient re-exports for application code.
pub mod prelude {
    pub use crate::algo::bayes::BayesSearch;
    pub use crate::algo::grid::GridSearch;
    pub use crate::algo::random::RandomSearch;
    pub use crate::algo::tpe::TpeSearch;
    pub use crate::algo::Suggester;
    pub use crate::ckpt::{CheckpointSpec, ResumeStats, SweepState};
    pub use crate::early_stop::EarlyStop;
    pub use crate::experiment::{ExperimentOptions, TrialOutcome};
    pub use crate::results::{HpoReport, TrialResult};
    pub use crate::runner::{HpoRunner, SweepControl};
    pub use crate::space::{Config, ConfigValue, ParamDomain, SearchSpace};
    pub use crate::stagetree::{StageObjective, StagePlan};
}

pub use prelude::*;
