//! Progress visualisation.
//!
//! The paper's ideal-tool checklist (§1) includes "visualisation dashboards
//! to enable researchers make sense of the output", and §4 notes that "for
//! immediate and interactive action, the performance measure returned can
//! be visualised". This module provides that layer for terminals: a live
//! line per completed trial (fed by
//! [`crate::runner::HpoRunner::run_observed`]) and a final leaderboard.

use crate::results::{HpoReport, TrialResult};

/// Streaming progress renderer.
#[derive(Debug, Default)]
pub struct Dashboard {
    completed: usize,
    best_accuracy: f64,
    best_label: String,
    lines: Vec<String>,
}

impl Dashboard {
    /// Fresh dashboard.
    pub fn new() -> Self {
        Dashboard::default()
    }

    /// Record a completed trial; returns the rendered progress line.
    pub fn on_trial(&mut self, trial: &TrialResult) -> String {
        self.completed += 1;
        let acc = trial.outcome.accuracy;
        let marker = if trial.outcome.is_failed() {
            " FAILED"
        } else if acc > self.best_accuracy {
            self.best_accuracy = acc;
            self.best_label = trial.config.label();
            " ★ new best"
        } else {
            ""
        };
        let line = format!(
            "[{:>4}] acc {:.4} (best {:.4}) {}{marker}",
            self.completed,
            acc,
            self.best_accuracy,
            trial.config.label(),
        );
        self.lines.push(line.clone());
        line
    }

    /// Number of trials seen.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Best accuracy seen so far.
    pub fn best_accuracy(&self) -> f64 {
        self.best_accuracy
    }

    /// Everything rendered so far.
    pub fn transcript(&self) -> String {
        self.lines.join("\n")
    }
}

/// Top-`k` leaderboard of a finished report.
pub fn leaderboard(report: &HpoReport, k: usize) -> String {
    let mut ranked: Vec<&TrialResult> =
        report.trials.iter().filter(|t| !t.outcome.is_failed()).collect();
    ranked.sort_by(|a, b| b.outcome.accuracy.total_cmp(&a.outcome.accuracy));
    let mut out = format!(
        "top {} of {} trials ({}):\n",
        k.min(ranked.len()),
        report.trials.len(),
        report.algorithm
    );
    for (i, t) in ranked.iter().take(k).enumerate() {
        out.push_str(&format!(
            "{:>3}. {:.4}  {} ({} epochs)\n",
            i + 1,
            t.outcome.accuracy,
            t.config.label(),
            t.outcome.epochs_run
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TrialOutcome;
    use crate::space::{Config, ConfigValue};

    fn trial(opt: &str, acc: f64) -> TrialResult {
        TrialResult {
            config: Config::new().with("optimizer", ConfigValue::Str(opt.into())),
            outcome: TrialOutcome::with_accuracy(acc),
            task_us: 0,
        }
    }

    #[test]
    fn dashboard_tracks_best() {
        let mut d = Dashboard::new();
        let l1 = d.on_trial(&trial("SGD", 0.6));
        assert!(l1.contains("new best"), "{l1}");
        let l2 = d.on_trial(&trial("Adam", 0.9));
        assert!(l2.contains("new best"));
        let l3 = d.on_trial(&trial("RMSprop", 0.7));
        assert!(!l3.contains("new best"));
        assert_eq!(d.completed(), 3);
        assert_eq!(d.best_accuracy(), 0.9);
        assert_eq!(d.transcript().lines().count(), 3);
    }

    #[test]
    fn failed_trials_marked() {
        let mut d = Dashboard::new();
        let t =
            TrialResult { config: Config::new(), outcome: TrialOutcome::failed("x"), task_us: 0 };
        let line = d.on_trial(&t);
        assert!(line.contains("FAILED"));
        assert_eq!(d.best_accuracy(), 0.0);
    }

    #[test]
    fn leaderboard_ranks_and_truncates() {
        let report = HpoReport {
            algorithm: "grid".into(),
            trials: vec![trial("SGD", 0.6), trial("Adam", 0.9), trial("RMSprop", 0.7)],
            wall_us: 0,
            early_stopped: false,
        };
        let lb = leaderboard(&report, 2);
        let lines: Vec<&str> = lb.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows");
        assert!(lines[1].contains("Adam"));
        assert!(lines[2].contains("RMSprop"));
    }

    #[test]
    fn leaderboard_skips_failures() {
        let mut trials = vec![trial("Adam", 0.9)];
        trials.push(TrialResult {
            config: Config::new(),
            outcome: TrialOutcome::failed("x"),
            task_us: 0,
        });
        let report = HpoReport { algorithm: "r".into(), trials, wall_us: 0, early_stopped: false };
        let lb = leaderboard(&report, 10);
        assert_eq!(lb.lines().count(), 2);
    }
}
