//! Progress visualisation.
//!
//! The paper's ideal-tool checklist (§1) includes "visualisation dashboards
//! to enable researchers make sense of the output", and §4 notes that "for
//! immediate and interactive action, the performance measure returned can
//! be visualised". This module provides that layer for terminals: a live
//! line per completed trial (fed by
//! [`crate::runner::HpoRunner::run_observed`]), an optional periodic
//! runtime-metrics line (queue depth, task latency, retries — the live
//! scheduler-overhead view), and a final leaderboard.

use std::sync::Arc;

use runmetrics::MetricsRegistry;

use crate::ckpt::ResumeStats;
use crate::results::{HpoReport, TrialResult};
use crate::runner::StageStats;

/// Streaming progress renderer.
#[derive(Debug, Default)]
pub struct Dashboard {
    completed: usize,
    failed: usize,
    best_accuracy: f64,
    best_label: String,
    lines: Vec<String>,
    /// Registry to sample + how many trials between metrics lines.
    metrics: Option<(Arc<MetricsRegistry>, usize)>,
}

impl Dashboard {
    /// Fresh dashboard.
    pub fn new() -> Self {
        Dashboard::default()
    }

    /// Render a runtime-metrics summary line every `every` trials,
    /// sampled from `registry` (chainable). Pass the runtime's registry
    /// ([`rcompss::Runtime::metrics`]) to watch scheduler behaviour live.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>, every: usize) -> Self {
        self.metrics = Some((registry, every.max(1)));
        self
    }

    /// Record a completed trial; returns the rendered progress line
    /// (two lines when a periodic metrics sample is due).
    pub fn on_trial(&mut self, trial: &TrialResult) -> String {
        self.completed += 1;
        let acc = trial.outcome.accuracy;
        let marker = if trial.outcome.is_failed() {
            self.failed += 1;
            " FAILED"
        } else if acc > self.best_accuracy {
            self.best_accuracy = acc;
            self.best_label = trial.config.label();
            " ★ new best"
        } else {
            ""
        };
        let mut line = format!(
            "[{:>4}] acc {:.4} (best {:.4}) {}{marker}",
            self.completed,
            acc,
            self.best_accuracy,
            trial.config.label(),
        );
        self.lines.push(line.clone());
        if let Some(m) = self.metrics_line() {
            self.lines.push(m.clone());
            line.push('\n');
            line.push_str(&m);
        }
        line
    }

    /// The periodic metrics line, if one is due at the current trial count.
    fn metrics_line(&self) -> Option<String> {
        let (registry, every) = self.metrics.as_ref()?;
        if !self.completed.is_multiple_of(*every) {
            return None;
        }
        let snap = registry.snapshot();
        let counter = |n: &str| snap.counter(n).unwrap_or(0);
        // Per-function task latencies are labelled series; fold them into
        // one count + worst p99 for the one-line view.
        let (task_count, task_p99) = snap
            .histograms
            .iter()
            .filter(|(name, _)| name.starts_with("rcompss_task_latency_us"))
            .fold((0u64, 0u64), |(c, p), (_, h)| (c + h.count, p.max(h.p99)));
        Some(format!(
            "       metrics: tasks {}/{} done · {} retried · ready {} · task p99 {}µs · sched p99 {}µs",
            counter("rcompss_tasks_completed_total"),
            counter("rcompss_tasks_submitted_total"),
            counter("rcompss_tasks_retried_total"),
            snap.gauge("rcompss_ready_queue_depth").unwrap_or(0.0) as u64,
            if task_count > 0 { task_p99 } else { 0 },
            snap.histogram("rcompss_sched_decision_us").map(|h| h.p99).unwrap_or(0),
        ))
    }

    /// Record what resuming did; returns (and keeps in the transcript)
    /// the banner line — silent on a fresh, non-resumed sweep.
    pub fn on_resume(&mut self, stats: &ResumeStats) -> String {
        if !stats.resumed_any() {
            return String::new();
        }
        let line = resume_banner(stats);
        self.lines.push(line.clone());
        line
    }

    /// One-line checkpoint activity summary: trials replayed from the
    /// journal (this runtime's registry) and model snapshots restored
    /// (the process-global registry the objective records into, with the
    /// total epochs those restores skipped). Empty when nothing resumed
    /// or restored.
    pub fn ckpt_summary(&self) -> String {
        let resumed = self
            .metrics
            .as_ref()
            .and_then(|(reg, _)| reg.snapshot().counter("hpo_trials_resumed_total"))
            .unwrap_or(0);
        let snap = runmetrics::global().snapshot();
        let restores = snap.counter("ckpt_restore_total").unwrap_or(0);
        let restored_epochs = snap.counter("ckpt_restored_epochs_total").unwrap_or(0);
        if resumed == 0 && restores == 0 {
            return String::new();
        }
        format!(
            "checkpoint: {resumed} trials replayed from journal · \
             {restores} snapshot restores ({restored_epochs} epochs skipped)"
        )
    }

    /// One-line stage-tree activity summary, read from the runtime
    /// registry's `hpo_stage_epochs_saved_total` / `hpo_prefix_forks_total`
    /// counters (the [`crate::runner::HpoRunner::run_staged`] family
    /// publishes them). Empty when no sweep shared anything — or when the
    /// dashboard has no registry to read.
    pub fn stage_summary(&self) -> String {
        let Some((reg, _)) = &self.metrics else { return String::new() };
        let snap = reg.snapshot();
        let saved = snap.counter("hpo_stage_epochs_saved_total").unwrap_or(0);
        let forks = snap.counter("hpo_prefix_forks_total").unwrap_or(0);
        if saved == 0 && forks == 0 {
            return String::new();
        }
        format!("stage tree: {saved} epochs saved · {forks} prefix forks")
    }

    /// Number of trials seen.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Number of failed trials seen.
    pub fn failed(&self) -> usize {
        self.failed
    }

    /// Best accuracy seen so far.
    pub fn best_accuracy(&self) -> f64 {
        self.best_accuracy
    }

    /// Everything rendered so far.
    pub fn transcript(&self) -> String {
        self.lines.join("\n")
    }

    /// Per-worker summary for distributed runs, one line per node lane,
    /// ordered by `labels`:
    ///
    /// ```text
    /// worker w0@host:port: 8 tasks · rtt 1.2 ms · offset +3.4 ms · stats 0.8 s ago
    /// ```
    ///
    /// Reads the `rcompss_node_tasks_completed_total{node=...}` counters
    /// plus the telemetry gauges the heartbeat clock-sync maintains
    /// (`rnet_rtt_us`, `rnet_clock_offset_us`, `rnet_last_stats_us`);
    /// telemetry columns are omitted per-worker until the first estimate
    /// lands. `now_us` is the driver clock used for the last-scrape age.
    /// Empty string when no per-node counters exist (threaded/sim runs)
    /// or metrics are off.
    pub fn node_lanes(&self, labels: &[String], now_us: u64) -> String {
        let Some((registry, _)) = &self.metrics else { return String::new() };
        let snap = registry.snapshot();
        let mut out = String::new();
        for label in labels {
            let series = runmetrics::labeled("rcompss_node_tasks_completed_total", "node", label);
            let Some(n) = snap.counter(&series) else { continue };
            out.push_str(&format!("worker {label}: {n} tasks"));
            let gauge = |base: &str| snap.gauge(&runmetrics::labeled(base, "node", label));
            if let Some(rtt) = gauge("rnet_rtt_us") {
                out.push_str(&format!(" · rtt {:.1} ms", rtt / 1e3));
            }
            if let Some(offset) = gauge("rnet_clock_offset_us") {
                out.push_str(&format!(" · offset {:+.1} ms", offset / 1e3));
            }
            if let Some(at) = gauge("rnet_last_stats_us") {
                let age_us = now_us.saturating_sub(at as u64);
                out.push_str(&format!(" · stats {:.1} s ago", age_us as f64 / 1e6));
            }
            out.push('\n');
        }
        out
    }
}

/// The resume banner: `resumed sweep: X complete, Y re-enqueued`.
pub fn resume_banner(stats: &ResumeStats) -> String {
    format!("resumed sweep: {} complete, {} re-enqueued", stats.skipped_complete, stats.reenqueued)
}

/// The stage-tree banner a deduped sweep prints under its leaderboard:
/// `stage tree: 630 epochs saved (41% of naive) · 18 prefix forks`.
/// Empty when the run shared nothing (every trial trained from scratch).
pub fn stage_banner(stats: &StageStats) -> String {
    let saved = stats.epochs_saved();
    if saved == 0 && stats.forks == 0 {
        return String::new();
    }
    let pct = (saved * 100).checked_div(stats.naive_epochs).unwrap_or(0);
    format!("stage tree: {saved} epochs saved ({pct}% of naive) · {} prefix forks", stats.forks)
}

/// Top-`k` leaderboard of a finished report.
pub fn leaderboard(report: &HpoReport, k: usize) -> String {
    let mut ranked: Vec<&TrialResult> =
        report.trials.iter().filter(|t| !t.outcome.is_failed()).collect();
    ranked.sort_by(|a, b| b.outcome.accuracy.total_cmp(&a.outcome.accuracy));
    let failed = report.trials.len() - ranked.len();
    let failed_note = if failed > 0 { format!(", {failed} failed") } else { String::new() };
    let mut out = format!(
        "top {} of {} trials ({}{failed_note}):\n",
        k.min(ranked.len()),
        report.trials.len(),
        report.algorithm
    );
    for (i, t) in ranked.iter().take(k).enumerate() {
        out.push_str(&format!(
            "{:>3}. {:.4}  {} ({} epochs)\n",
            i + 1,
            t.outcome.accuracy,
            t.config.label(),
            t.outcome.epochs_run
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TrialOutcome;
    use crate::space::{Config, ConfigValue};

    fn trial(opt: &str, acc: f64) -> TrialResult {
        TrialResult {
            config: Config::new().with("optimizer", ConfigValue::Str(opt.into())),
            outcome: TrialOutcome::with_accuracy(acc),
            task_us: 0,
        }
    }

    #[test]
    fn dashboard_tracks_best() {
        let mut d = Dashboard::new();
        let l1 = d.on_trial(&trial("SGD", 0.6));
        assert!(l1.contains("new best"), "{l1}");
        let l2 = d.on_trial(&trial("Adam", 0.9));
        assert!(l2.contains("new best"));
        let l3 = d.on_trial(&trial("RMSprop", 0.7));
        assert!(!l3.contains("new best"));
        assert_eq!(d.completed(), 3);
        assert_eq!(d.best_accuracy(), 0.9);
        assert_eq!(d.transcript().lines().count(), 3);
    }

    #[test]
    fn failed_trials_marked_and_counted() {
        let mut d = Dashboard::new();
        let t =
            TrialResult { config: Config::new(), outcome: TrialOutcome::failed("x"), task_us: 0 };
        let line = d.on_trial(&t);
        assert!(line.contains("FAILED"));
        assert_eq!(d.best_accuracy(), 0.0);
        assert_eq!(d.failed(), 1);
        d.on_trial(&trial("Adam", 0.9));
        assert_eq!(d.failed(), 1, "successes don't bump the failure count");
        assert_eq!(d.completed(), 2);
    }

    #[test]
    fn periodic_metrics_line_renders_from_registry() {
        let reg = std::sync::Arc::new(runmetrics::MetricsRegistry::new(true));
        reg.counter("rcompss_tasks_submitted_total").add(5);
        reg.counter("rcompss_tasks_completed_total").add(4);
        reg.counter("rcompss_tasks_retried_total").incr();
        reg.gauge("rcompss_ready_queue_depth").set(2.0);
        reg.histogram(&runmetrics::labeled("rcompss_task_latency_us", "fn", "exp")).record(900);
        reg.histogram("rcompss_sched_decision_us").record(7);
        let mut d = Dashboard::new().with_metrics(std::sync::Arc::clone(&reg), 2);
        let l1 = d.on_trial(&trial("SGD", 0.5));
        assert!(!l1.contains("metrics:"), "not due yet: {l1}");
        let l2 = d.on_trial(&trial("Adam", 0.8));
        let metrics_line = l2.lines().nth(1).expect("metrics line due every 2 trials");
        assert!(metrics_line.contains("tasks 4/5 done"), "{metrics_line}");
        assert!(metrics_line.contains("1 retried"), "{metrics_line}");
        assert!(metrics_line.contains("ready 2"), "{metrics_line}");
        assert_eq!(d.transcript().lines().count(), 3, "2 trial lines + 1 metrics line");
    }

    #[test]
    fn node_lanes_summarises_per_worker_counters() {
        let reg = std::sync::Arc::new(runmetrics::MetricsRegistry::new(true));
        let w0 = "w0@127.0.0.1:7077".to_string();
        let w1 = "w1@127.0.0.1:7078".to_string();
        reg.counter(&runmetrics::labeled("rcompss_node_tasks_completed_total", "node", &w0)).add(8);
        reg.counter(&runmetrics::labeled("rcompss_node_tasks_completed_total", "node", &w1)).add(4);
        let d = Dashboard::new().with_metrics(std::sync::Arc::clone(&reg), 10);
        let lanes = d.node_lanes(&[w0.clone(), w1.clone()], 0);
        let lines: Vec<&str> = lanes.lines().collect();
        assert_eq!(lines.len(), 2, "{lanes}");
        assert_eq!(lines[0], format!("worker {w0}: 8 tasks"));
        assert_eq!(lines[1], format!("worker {w1}: 4 tasks"));
        // Threaded runs have no per-node series: silent.
        assert!(d.node_lanes(&["node0".to_string()], 0).is_empty());
        // No registry: silent.
        assert!(Dashboard::new().node_lanes(&[w0], 0).is_empty());
    }

    #[test]
    fn node_lanes_show_clock_sync_and_scrape_age() {
        let reg = std::sync::Arc::new(runmetrics::MetricsRegistry::new(true));
        let w0 = "w0@127.0.0.1:7077".to_string();
        let w1 = "w1@127.0.0.1:7078".to_string();
        reg.counter(&runmetrics::labeled("rcompss_node_tasks_completed_total", "node", &w0)).add(8);
        reg.counter(&runmetrics::labeled("rcompss_node_tasks_completed_total", "node", &w1)).add(4);
        reg.gauge(&runmetrics::labeled("rnet_rtt_us", "node", &w0)).set(1_200.0);
        reg.gauge(&runmetrics::labeled("rnet_clock_offset_us", "node", &w0)).set(-3_400.0);
        reg.gauge(&runmetrics::labeled("rnet_last_stats_us", "node", &w0)).set(1_500_000.0);
        let d = Dashboard::new().with_metrics(std::sync::Arc::clone(&reg), 10);
        let lanes = d.node_lanes(&[w0.clone(), w1.clone()], 2_300_000);
        let lines: Vec<&str> = lanes.lines().collect();
        assert_eq!(
            lines[0],
            format!("worker {w0}: 8 tasks · rtt 1.2 ms · offset -3.4 ms · stats 0.8 s ago")
        );
        // No telemetry for w1 yet: columns omitted, not zero-filled.
        assert_eq!(lines[1], format!("worker {w1}: 4 tasks"));
    }

    #[test]
    fn resume_banner_and_ckpt_summary() {
        let mut d = Dashboard::new();
        assert!(d.on_resume(&ResumeStats::default()).is_empty(), "fresh sweep: no banner");
        let line = d.on_resume(&ResumeStats { skipped_complete: 3, reenqueued: 2 });
        assert_eq!(line, "resumed sweep: 3 complete, 2 re-enqueued");
        assert!(d.transcript().contains("re-enqueued"));

        let reg = std::sync::Arc::new(runmetrics::MetricsRegistry::new(true));
        reg.counter("hpo_trials_resumed_total").add(3);
        let d = Dashboard::new().with_metrics(std::sync::Arc::clone(&reg), 10);
        let s = d.ckpt_summary();
        assert!(s.contains("3 trials replayed"), "{s}");
    }

    #[test]
    fn stage_banner_reports_savings_and_stays_silent_when_unshared() {
        let stats = StageStats { segments: 27, forks: 18, naive_epochs: 1530, staged_epochs: 900 };
        let line = stage_banner(&stats);
        assert_eq!(line, "stage tree: 630 epochs saved (41% of naive) · 18 prefix forks");
        let unshared = StageStats { segments: 4, forks: 0, naive_epochs: 40, staged_epochs: 40 };
        assert!(stage_banner(&unshared).is_empty(), "nothing shared: no banner");

        // The registry-backed summary mirrors the counters the runner adds.
        let reg = std::sync::Arc::new(runmetrics::MetricsRegistry::new(true));
        reg.counter("hpo_stage_epochs_saved_total").add(630);
        reg.counter("hpo_prefix_forks_total").add(18);
        let d = Dashboard::new().with_metrics(std::sync::Arc::clone(&reg), 10);
        assert_eq!(d.stage_summary(), "stage tree: 630 epochs saved · 18 prefix forks");
        assert!(Dashboard::new().stage_summary().is_empty(), "no registry: silent");
    }

    #[test]
    fn leaderboard_header_reports_failures() {
        let mut trials = vec![trial("Adam", 0.9), trial("SGD", 0.6)];
        trials.push(TrialResult {
            config: Config::new(),
            outcome: TrialOutcome::failed("x"),
            task_us: 0,
        });
        let report = HpoReport { algorithm: "g".into(), trials, wall_us: 0, early_stopped: false };
        let lb = leaderboard(&report, 5);
        assert!(lb.lines().next().unwrap().contains("1 failed"), "{lb}");
        // ...and stays silent when everything succeeded.
        let clean = HpoReport {
            algorithm: "g".into(),
            trials: vec![trial("Adam", 0.9)],
            wall_us: 0,
            early_stopped: false,
        };
        assert!(!leaderboard(&clean, 5).contains("failed"));
    }

    #[test]
    fn leaderboard_ranks_and_truncates() {
        let report = HpoReport {
            algorithm: "grid".into(),
            trials: vec![trial("SGD", 0.6), trial("Adam", 0.9), trial("RMSprop", 0.7)],
            wall_us: 0,
            early_stopped: false,
        };
        let lb = leaderboard(&report, 2);
        let lines: Vec<&str> = lb.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows");
        assert!(lines[1].contains("Adam"));
        assert!(lines[2].contains("RMSprop"));
    }

    #[test]
    fn leaderboard_skips_failures() {
        let mut trials = vec![trial("Adam", 0.9)];
        trials.push(TrialResult {
            config: Config::new(),
            outcome: TrialOutcome::failed("x"),
            task_us: 0,
        });
        let report = HpoReport { algorithm: "r".into(), trials, wall_us: 0, early_stopped: false };
        let lb = leaderboard(&report, 10);
        assert_eq!(lb.lines().count(), 2);
    }
}
