//! HPO-as-a-service over loopback TCP: one in-process [`SweepServer`]
//! owning a pool of real `WorkerServer`s, driven by blocking
//! [`SweepClient`]s — multi-tenant fair share, bit-identical results,
//! clean cancellation, and admission control.

use std::sync::Arc;
use std::time::Duration;

use hpo::algo::grid::GridSearch;
use hpo::algo::random::RandomSearch;
use hpo::client::{SubmitSpec, SweepClient};
use hpo::experiment::{ExperimentOptions, Objective, TrialOutcome};
use hpo::server::{
    gather_workers, is_terminal, PoolPlan, ServerConfig, SweepServer, REJECT_BAD_REQUEST,
    REJECT_QUEUE_FULL, REJECT_QUOTA, REJECT_UNKNOWN_SWEEP, SWEEP_CANCELLED, SWEEP_DONE,
};
use hpo::space::{Config, SearchSpace};
use hpo::wire::{experiment_task_def, register_hpo_codecs};
use hpo::HpoRunner;
use rcompss::{
    DistributedConfig, Runtime, RuntimeConfig, TaskRegistry, WorkerConfig, WorkerHandle,
    WorkerServer,
};
use rnet::LeaderRow;

/// Deterministic synthetic objective: accuracy is a pure function of the
/// config, so served and standalone runs must agree bit-for-bit.
fn objective(delay: Duration) -> Objective {
    Arc::new(move |config: &Config, budget: Option<u32>| {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let epochs =
            budget.map(i64::from).or_else(|| config.get_int("num_epochs")).unwrap_or(10) as f64;
        let opt_bonus = match config.get_str("optimizer") {
            Some("Adam") => 0.15,
            Some("RMSprop") => 0.08,
            _ => 0.0,
        };
        let lr = config.get_float("learning_rate").unwrap_or(1e-3);
        let acc = (0.5 + 0.004 * epochs + opt_bonus - (lr - 1e-3).abs()).clamp(0.0, 0.99);
        Ok(TrialOutcome::with_accuracy(acc))
    })
}

const SPACE_JSON: &str = r#"{
    "optimizer": ["Adam", "RMSprop", "SGD"],
    "num_epochs": [10, 20],
    "learning_rate": [0.001, 0.01]
}"#;

/// The reference space must come from the *same* JSON parse the server
/// performs — construction order feeds the samplers' determinism.
fn space() -> SearchSpace {
    SearchSpace::from_json(SPACE_JSON).expect("space json")
}

fn spawn_workers(n: usize, opts: &ExperimentOptions, obj: &Objective) -> Vec<WorkerHandle> {
    register_hpo_codecs();
    let registry = TaskRegistry::new().with(experiment_task_def(opts, obj));
    (0..n)
        .map(|i| {
            let cfg =
                WorkerConfig { name: format!("pool-w{i}"), cores: 2, ..WorkerConfig::default() };
            WorkerServer::bind("127.0.0.1:0", cfg, registry.clone())
                .expect("bind")
                .spawn()
                .expect("spawn")
        })
        .collect()
}

/// Start a sweep server over `workers` real loopback worker daemons.
fn start_server(
    workers: &[WorkerHandle],
    opts: &ExperimentOptions,
    obj: &Objective,
    cfg: ServerConfig,
) -> SweepServer {
    let addrs: Vec<String> = workers.iter().map(|w| w.addr()).collect();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind server");
    let boots = gather_workers(&listener, &PoolPlan::dial_out(&addrs, Duration::from_secs(10)))
        .expect("gather pool");
    assert_eq!(boots.len(), workers.len());
    let rt = Runtime::from_bootstraps(
        RuntimeConfig::single_node(1).with_metrics(true),
        boots,
        DistributedConfig::default(),
    );
    SweepServer::start(listener, rt, Arc::clone(obj), opts.clone(), cfg).expect("start server")
}

fn connect(server: &SweepServer, tenant: &str) -> SweepClient {
    let client = SweepClient::connect(&server.addr().to_string(), tenant).expect("connect client");
    client.set_timeout(Some(Duration::from_secs(60))).expect("timeout");
    client
}

/// Sorted `(config label, accuracy bits)` rows — the bit-identity
/// currency on both the served and the standalone side.
fn row_table(rows: &[LeaderRow]) -> Vec<(String, u64)> {
    let mut table: Vec<(String, u64)> =
        rows.iter().map(|r| (r.label.clone(), r.accuracy.to_bits())).collect();
    table.sort();
    table
}

fn report_table(report: &hpo::HpoReport) -> Vec<(String, u64)> {
    let mut table: Vec<(String, u64)> =
        report.trials.iter().map(|t| (t.config.label(), t.outcome.accuracy.to_bits())).collect();
    table.sort();
    table
}

#[test]
fn two_tenants_share_the_pool_and_match_standalone_runs() {
    let opts = ExperimentOptions::default();
    let obj = objective(Duration::from_millis(2));
    let workers = spawn_workers(2, &opts, &obj);
    // A tight token bucket (1-deep, 150 admissions/s) forces both tenants
    // through the fair-share gate's wait path while staying fast.
    let server = start_server(
        &workers,
        &opts,
        &obj,
        ServerConfig { rate: 150.0, burst: 1.0, ..ServerConfig::default() },
    );

    // Both sweeps in flight on the one shared pool before either is
    // awaited: alice runs the full grid, bob samples the same space.
    let mut alice = connect(&server, "alice");
    let mut bob = connect(&server, "bob");
    let grid_spec = SubmitSpec {
        name: "alice-grid".to_string(),
        space_json: SPACE_JSON.to_string(),
        algo: "grid".to_string(),
        trials: 0,
        seed: 0,
        wave: 0,
    };
    let random_spec = SubmitSpec {
        name: "bob-random".to_string(),
        space_json: SPACE_JSON.to_string(),
        algo: "random".to_string(),
        trials: 10,
        seed: 7,
        wave: 0,
    };
    let a = alice.submit(&grid_spec).expect("io").expect("accepted");
    let b = bob.submit(&random_spec).expect("io").expect("accepted");
    assert_ne!(a.sweep_id, b.sweep_id);
    assert_eq!(a.total, 12, "3 optimizers × 2 epochs × 2 lrs");
    assert_eq!(b.total, 10);

    let mut a_rows: Vec<LeaderRow> = Vec::new();
    let a_end = alice.wait_done(a.sweep_id, |r| a_rows.push(r.clone())).expect("alice stream");
    let mut b_rows: Vec<LeaderRow> = Vec::new();
    let b_end = bob.wait_done(b.sweep_id, |r| b_rows.push(r.clone())).expect("bob stream");
    assert_eq!(a_end.state, SWEEP_DONE, "{}", a_end.message);
    assert_eq!(b_end.state, SWEEP_DONE, "{}", b_end.message);
    assert_eq!(a_rows.len(), 12);
    assert_eq!(b_rows.len(), 10);

    // Bit-identical to standalone `hpo-run` executions of the same
    // sweeps: same options, same algorithm construction, same seed.
    let runner = HpoRunner::new(opts);
    let rt = Runtime::threaded(RuntimeConfig::single_node(4));
    let grid_ref =
        runner.run(&rt, &mut GridSearch::new(&space()), Arc::clone(&obj)).expect("grid ref");
    let random_ref = runner
        .run(&rt, &mut RandomSearch::new(&space(), 10, 7), Arc::clone(&obj))
        .expect("random ref");
    assert_eq!(row_table(&a_rows), report_table(&grid_ref), "grid sweep bit-identical");
    assert_eq!(row_table(&b_rows), report_table(&random_ref), "random sweep bit-identical");

    // The tight bucket made tenants wait: the throttle counters are live
    // both on the wire (SweepStatus) and in the metrics registry.
    let a_status = alice.status(a.sweep_id, false).expect("io").expect("known sweep");
    let b_status = bob.status(b.sweep_id, false).expect("io").expect("known sweep");
    assert!(
        a_status.throttled > 0 || b_status.throttled > 0,
        "a 1-deep token bucket must have made someone wait (alice {}, bob {})",
        a_status.throttled,
        b_status.throttled
    );
    let snap = server.metrics().snapshot();
    let throttled = |tenant: &str| {
        snap.counter(&runmetrics::labeled("hposerver_tenant_throttled_total", "tenant", tenant))
            .unwrap_or(0)
    };
    assert_eq!(
        throttled("alice"),
        a_status.throttled,
        "wire status and metrics registry agree for alice"
    );
    assert_eq!(throttled("bob"), b_status.throttled, "and for bob");
    assert!(snap.counter("hposerver_sweeps_completed_total").unwrap_or(0) >= 2);
    assert!(
        snap.histogram(&runmetrics::labeled("hposerver_trial_latency_us", "sweep", "alice-grid"))
            .map(|h| h.count)
            .unwrap_or(0)
            >= 12,
        "per-sweep latency histogram recorded every trial"
    );
    server.shutdown();
}

#[test]
fn cancel_mid_sweep_drains_cleanly_and_the_pool_is_reused() {
    let opts = ExperimentOptions::default();
    // Slow trials + 2-wide waves so the cancel lands mid-run.
    let obj = objective(Duration::from_millis(60));
    let workers = spawn_workers(2, &opts, &obj);
    let server = start_server(
        &workers,
        &opts,
        &obj,
        ServerConfig { wave: Some(2), ..ServerConfig::default() },
    );

    let mut watcher = connect(&server, "carol");
    let spec = SubmitSpec {
        name: "doomed".to_string(),
        space_json: SPACE_JSON.to_string(),
        algo: "grid".to_string(),
        trials: 0,
        seed: 0,
        wave: 0,
    };
    let info = watcher.submit(&spec).expect("io").expect("accepted");

    // Second connection cancels once the sweep is demonstrably mid-run
    // (first leaderboard row seen on the watcher).
    let first = watcher.next_frame().expect("first event");
    assert!(
        matches!(first, rnet::Frame::LeaderboardChunk { .. }),
        "expected a leaderboard row first, got {first:?}"
    );
    let mut canceller = connect(&server, "carol");
    let ack = canceller.cancel(info.sweep_id).expect("io").expect("known sweep");
    assert!(!is_terminal(ack.state), "cancel acked while still draining");

    let mut rows = 1usize; // the row consumed above
    let end = watcher.wait_done(info.sweep_id, |_| rows += 1).expect("stream to end");
    assert_eq!(end.state, SWEEP_CANCELLED);
    assert!(rows < 12, "cancel must cut the grid short, got all {rows} trials");

    // The pool survived: a subsequent sweep on the same server reuses the
    // same two workers and completes the full grid, bit-identical to a
    // standalone run — no leaked runtime state, no lost workers.
    let spec2 = SubmitSpec { name: "after".to_string(), ..spec };
    let info2 = watcher.submit(&spec2).expect("io").expect("accepted");
    let mut rows2: Vec<LeaderRow> = Vec::new();
    let end2 = watcher.wait_done(info2.sweep_id, |r| rows2.push(r.clone())).expect("stream");
    assert_eq!(end2.state, SWEEP_DONE, "{}", end2.message);
    assert_eq!(rows2.len(), 12);
    let runner = HpoRunner::new(opts);
    let rt = Runtime::threaded(RuntimeConfig::single_node(4));
    let reference =
        runner.run(&rt, &mut GridSearch::new(&space()), Arc::clone(&obj)).expect("reference");
    assert_eq!(row_table(&rows2), report_table(&reference));

    let snap = server.metrics().snapshot();
    assert_eq!(
        snap.counter("rcompss_workers_lost_total").unwrap_or(0),
        0,
        "cancellation must not cost workers"
    );
    server.shutdown();
}

#[test]
fn admission_control_quotas_and_unknown_sweeps_reject() {
    // Local threaded pool: admission logic is backend-independent.
    let opts = ExperimentOptions::default();
    let obj = objective(Duration::ZERO);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let rt = Runtime::threaded(RuntimeConfig::single_node(4).with_metrics(true));
    let server = SweepServer::start(
        listener,
        rt,
        Arc::clone(&obj),
        opts,
        ServerConfig { quota_trials: 5, ..ServerConfig::default() },
    )
    .expect("start");
    let mut client = connect(&server, "dave");

    // Bad requests come back typed.
    let bad_algo = SubmitSpec {
        name: "x".to_string(),
        space_json: SPACE_JSON.to_string(),
        algo: "simulated-annealing".to_string(),
        trials: 5,
        seed: 0,
        wave: 0,
    };
    let rej = client.submit(&bad_algo).expect("io").expect_err("unknown algo rejected");
    assert_eq!(rej.code, REJECT_BAD_REQUEST);
    let bad_space = SubmitSpec {
        space_json: "{not json".to_string(),
        algo: "grid".to_string(),
        ..bad_algo.clone()
    };
    let rej = client.submit(&bad_space).expect("io").expect_err("bad space rejected");
    assert_eq!(rej.code, REJECT_BAD_REQUEST);
    let rej = client.status(999, false).expect("io").expect_err("unknown sweep");
    assert_eq!(rej.code, REJECT_UNKNOWN_SWEEP);
    let rej = client.cancel(999).expect("io").expect_err("unknown sweep");
    assert_eq!(rej.code, REJECT_UNKNOWN_SWEEP);

    // A 5-trial tenant quota halts the 12-config grid cleanly after 5
    // admissions, and further submissions are rejected outright.
    let grid = SubmitSpec {
        name: "quota-grid".to_string(),
        space_json: SPACE_JSON.to_string(),
        algo: "grid".to_string(),
        trials: 0,
        seed: 0,
        wave: 1,
    };
    let info = client.submit(&grid).expect("io").expect("accepted");
    let mut rows = 0usize;
    let end = client.wait_done(info.sweep_id, |_| rows += 1).expect("stream");
    assert_eq!(end.state, SWEEP_DONE);
    assert_eq!(rows, 5, "exactly the quota's worth of trials ran");
    assert!(end.message.contains("quota"), "quota halt is explained: {:?}", end.message);
    let rej = client.submit(&grid).expect("io").expect_err("tenant is out of quota");
    assert_eq!(rej.code, REJECT_QUOTA);

    // Queue-depth rejection: a fresh tenant fills max_queued and the next
    // submission bounces. (Zero-length queue forces it immediately.)
    drop(client);
    let listener2 = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let rt2 = Runtime::threaded(RuntimeConfig::single_node(2).with_metrics(true));
    let slow_obj = objective(Duration::from_millis(40));
    let server2 = SweepServer::start(
        listener2,
        rt2,
        slow_obj,
        ExperimentOptions::default(),
        ServerConfig { max_active: 1, max_queued: 0, ..ServerConfig::default() },
    )
    .expect("start");
    let mut erin = connect(&server2, "erin");
    let running = erin.submit(&grid).expect("io").expect("first sweep admitted");
    let rej = erin.submit(&grid).expect("io").expect_err("no queue slots left");
    assert_eq!(rej.code, REJECT_QUEUE_FULL);
    let end = erin.wait_done(running.sweep_id, |_| {}).expect("stream");
    assert!(is_terminal(end.state));
    server2.shutdown();
    server.shutdown();
}

#[test]
fn staged_server_shares_prefixes_and_stays_bit_identical() {
    use hpo::experiment::tinyml_objective;
    use hpo::stagetree::{stage_task_def, StageObjective};
    use tinyml::Dataset;

    // Real tinyml training this time: prefix sharing only pays (and can
    // only be proven bit-identical) on an objective with real epochs.
    let opts = ExperimentOptions::default();
    let data = Arc::new(Dataset::synthetic_mnist(240, 11));
    let obj = tinyml_objective(Arc::clone(&data), vec![12]);
    let stage = StageObjective::new(Arc::clone(&data), vec![12]);
    let space_json = r#"{"optimizer": ["Adam", "SGD"], "num_epochs": [2, 4]}"#;

    // Pool workers register *both* task defs: naive trials and stage
    // segments, so one pool serves staged and unstaged sweeps alike.
    register_hpo_codecs();
    let registry = TaskRegistry::new()
        .with(experiment_task_def(&opts, &obj))
        .with(stage_task_def(&opts, &stage));
    let workers: Vec<WorkerHandle> = (0..2)
        .map(|i| {
            let cfg =
                WorkerConfig { name: format!("stage-w{i}"), cores: 2, ..WorkerConfig::default() };
            WorkerServer::bind("127.0.0.1:0", cfg, registry.clone())
                .expect("bind")
                .spawn()
                .expect("spawn")
        })
        .collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr()).collect();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind server");
    let boots = gather_workers(&listener, &PoolPlan::dial_out(&addrs, Duration::from_secs(10)))
        .expect("gather pool");
    let rt = Runtime::from_bootstraps(
        RuntimeConfig::single_node(1).with_metrics(true),
        boots,
        DistributedConfig::default(),
    );
    let server = SweepServer::start_staged(
        listener,
        rt,
        Arc::clone(&obj),
        Some(stage),
        opts.clone(),
        ServerConfig::default(),
    )
    .expect("start staged server");

    let mut client = connect(&server, "frank");
    let spec = SubmitSpec {
        name: "staged-grid".to_string(),
        space_json: space_json.to_string(),
        algo: "grid".to_string(),
        trials: 0,
        seed: 0,
        wave: 0,
    };
    let info = client.submit(&spec).expect("io").expect("accepted");
    let mut rows: Vec<LeaderRow> = Vec::new();
    let end = client.wait_done(info.sweep_id, |r| rows.push(r.clone())).expect("stream");
    assert_eq!(end.state, SWEEP_DONE, "{}", end.message);
    assert_eq!(rows.len(), 4, "every grid config reports a trial");
    assert!(
        end.message.contains("epochs saved"),
        "done message carries the stage banner: {:?}",
        end.message
    );

    // Bit-identical to the naive standalone grid over the same space.
    let runner = HpoRunner::new(opts);
    let trt = Runtime::threaded(RuntimeConfig::single_node(4));
    let space = SearchSpace::from_json(space_json).expect("space json");
    let reference = runner.run(&trt, &mut GridSearch::new(&space), obj).expect("reference");
    assert_eq!(row_table(&rows), report_table(&reference), "staged sweep bit-identical to naive");

    // The savings counters landed on the server's shared registry: the
    // epoch axis shares its prefix (2+4 → 4 epochs per optimizer).
    let snap = server.metrics().snapshot();
    assert_eq!(snap.counter("hpo_stage_epochs_saved_total"), Some(4));
    assert_eq!(snap.counter("hpo_prefix_forks_total"), Some(2));
    server.shutdown();
    for w in workers {
        w.join().ok();
    }
}
