//! Crash/recovery end-to-end: a sweep interrupted mid-trial and resumed
//! from its checkpoint directory must produce a trial table bit-identical
//! to an uninterrupted run — journaled-complete trials replay their
//! recorded outcome, the in-flight trial restores its model snapshot and
//! finishes the remaining epochs on the exact training trajectory.

use std::path::PathBuf;
use std::sync::Arc;

use hpo::algo::grid::GridSearch;
use hpo::ckpt::{trial_key, CheckpointSpec, SweepRecord};
use hpo::experiment::{
    tinyml_objective, tinyml_objective_checkpointed, train_config_from, ExperimentOptions,
    TrialCheckpoints, TrialOutcome,
};
use hpo::space::{ConfigValue, ParamDomain, SearchSpace};
use hpo::{HpoReport, HpoRunner};
use rcompss::{Runtime, RuntimeConfig};
use tinyml::data::Dataset;
use tinyml::train::{train_with_checkpoints, Checkpointing, EpochSignal};

fn space() -> SearchSpace {
    SearchSpace::new()
        .with(
            "optimizer",
            ParamDomain::Choice(vec![
                ConfigValue::Str("Adam".into()),
                ConfigValue::Str("SGD".into()),
            ]),
        )
        .with("num_epochs", ParamDomain::Choice(vec![ConfigValue::Int(6)]))
        .with("batch_size", ParamDomain::Choice(vec![ConfigValue::Int(32)]))
}

fn dataset() -> Arc<Dataset> {
    Arc::new(Dataset::synthetic_mnist(300, 2))
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hpo-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Sorted (label, accuracy-bits, accuracy-curve-bits) rows: bitwise trial
/// table, no float tolerance anywhere.
fn exact_table(report: &HpoReport) -> Vec<(String, u64, Vec<u64>)> {
    let mut rows: Vec<(String, u64, Vec<u64>)> = report
        .trials
        .iter()
        .map(|t| {
            (
                t.config.label(),
                t.outcome.accuracy.to_bits(),
                t.outcome.epoch_accuracy.iter().map(|a| a.to_bits()).collect(),
            )
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn interrupted_and_resumed_sweep_is_bit_identical() {
    let data = dataset();
    let runner = HpoRunner::new(ExperimentOptions::default());
    let reg = runmetrics::global();
    reg.set_enabled(true);
    let restores_before = reg.counter("ckpt_restore_total").value();
    let bytes_before = reg.counter("ckpt_bytes_written").value();

    // Reference: the same sweep, never interrupted, no checkpointing.
    let reference = {
        let rt = Runtime::threaded(RuntimeConfig::single_node(2));
        runner
            .run(&rt, &mut GridSearch::new(&space()), tinyml_objective(Arc::clone(&data), vec![16]))
            .expect("reference run")
    };
    assert_eq!(reference.trials.len(), 2);

    // Stage the crash: trial A finished (journaled), trial B killed after
    // 3 of 6 epochs with a model snapshot at epoch 2 on disk.
    let dir = tmpdir("resume");
    let spec = CheckpointSpec::new(&dir).with_every(2);
    let journal = spec.journal().expect("journal");
    let store = Arc::new(spec.store().expect("store"));

    let mut grid = GridSearch::new(&space());
    let done = hpo::algo::Suggester::suggest(&mut grid, &[]).expect("first config");
    let victim = hpo::algo::Suggester::suggest(&mut grid, &[]).expect("second config");

    // Trial A ran to completion before the crash: journal its real outcome.
    let obj = tinyml_objective(Arc::clone(&data), vec![16]);
    let done_outcome = obj(&done, None).expect("trial A");
    journal.record(&SweepRecord::Submitted { key: trial_key(&done), label: done.label() }).unwrap();
    journal
        .record(&SweepRecord::Finished {
            key: trial_key(&done),
            outcome: done_outcome.clone(),
            task_us: 41,
        })
        .unwrap();

    // Trial B dies mid-flight: submitted, snapshot at epoch 2, no outcome.
    journal
        .record(&SweepRecord::Submitted { key: trial_key(&victim), label: victim.label() })
        .unwrap();
    let mut cfg = train_config_from(&victim, &[16]).expect("translate");
    cfg.threads = 1;
    let key = trial_key(&victim);
    let mut sink = |snap: &tinyml::TrainSnapshot| {
        store.save(key, snap.next_epoch, &snap.encode()).unwrap();
        journal.record(&SweepRecord::Epoch { key, epoch: snap.next_epoch }).unwrap();
    };
    train_with_checkpoints(
        &cfg,
        &data,
        Checkpointing { every: 2, resume: None, sink: Some(&mut sink) },
        &mut |epoch, _, _| if epoch >= 2 { EpochSignal::Stop } else { EpochSignal::Continue },
    );
    assert_eq!(store.epochs(key).unwrap(), vec![2], "crash left the epoch-2 snapshot");

    // Resume: recover the journal, rerun the full grid.
    let state = spec.recover().expect("recover");
    assert_eq!(state.complete.len(), 1);
    assert_eq!(state.in_flight, vec![key]);
    assert_eq!(state.last_epoch[&key], 2);

    let rt = Runtime::threaded(RuntimeConfig::single_node(2));
    let objective = tinyml_objective_checkpointed(
        Arc::clone(&data),
        vec![16],
        None,
        TrialCheckpoints {
            every: 2,
            store: Some(Arc::clone(&store)),
            journal: Some(journal.clone()),
        },
    );
    let (resumed, stats) = runner
        .run_journaled(
            &rt,
            &mut GridSearch::new(&space()),
            objective,
            &journal,
            Some(&state),
            |_| {},
        )
        .expect("resumed run");

    assert_eq!(stats.skipped_complete, 1);
    assert_eq!(stats.reenqueued, 1);
    assert_eq!(exact_table(&resumed), exact_table(&reference), "trial table bit-identical");
    // The skipped trial carries its journaled task time, not a re-run's.
    let done_trial =
        resumed.trials.iter().find(|t| t.config.label() == done.label()).expect("trial A");
    assert_eq!(done_trial.task_us, 41);
    assert_eq!(done_trial.outcome, done_outcome);

    // The in-flight trial really restored (metrics moved) and the
    // finished sweep cleaned its snapshots up.
    assert!(reg.counter("ckpt_restore_total").value() > restores_before, "snapshot restored");
    assert!(reg.counter("ckpt_bytes_written").value() > bytes_before, "snapshots written");
    assert!(store.epochs(key).unwrap().is_empty(), "completion discards the trial's snapshots");

    // A second resume finds everything complete: nothing re-runs.
    let state = spec.recover().expect("recover again");
    assert_eq!(state.complete.len(), 2);
    assert!(state.in_flight.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_skips_completed_trials_without_rerunning_them() {
    let dir = tmpdir("skip");
    let spec = CheckpointSpec::new(&dir);
    let journal = spec.journal().expect("journal");
    let mut grid = GridSearch::new(&space());
    let done = hpo::algo::Suggester::suggest(&mut grid, &[]).expect("first config");
    journal.record(&SweepRecord::Submitted { key: trial_key(&done), label: done.label() }).unwrap();
    journal
        .record(&SweepRecord::Finished {
            key: trial_key(&done),
            outcome: TrialOutcome::with_accuracy(0.77),
            task_us: 5,
        })
        .unwrap();
    let state = spec.recover().expect("recover");

    // An objective that proves the skip: re-running the journaled config
    // would fail the trial, and the report would show it.
    let forbidden = done.label();
    let objective: hpo::experiment::Objective = Arc::new(move |config, _| {
        assert_ne!(config.label(), forbidden, "journaled-complete trial was re-run");
        Ok(TrialOutcome::with_accuracy(0.5))
    });
    let rt = Runtime::threaded(RuntimeConfig::single_node(2));
    let runner = HpoRunner::new(ExperimentOptions::default());
    let (report, stats) = runner
        .run_journaled(
            &rt,
            &mut GridSearch::new(&space()),
            objective,
            &journal,
            Some(&state),
            |_| {},
        )
        .expect("resumed run");

    assert_eq!(stats.skipped_complete, 1);
    assert_eq!(stats.reenqueued, 0, "nothing was in flight");
    assert_eq!(report.trials.len(), 2);
    assert_eq!(report.failures(), 0);
    let replayed =
        report.trials.iter().find(|t| t.config.label() == done.label()).expect("skipped trial");
    assert_eq!(replayed.outcome.accuracy, 0.77, "journaled outcome replayed verbatim");
    assert_eq!(replayed.task_us, 5);
    let _ = std::fs::remove_dir_all(&dir);
}
