//! The stage tree's headline guarantee, end to end: a deduped sweep —
//! grid or successive halving, threaded or distributed loopback — trains
//! strictly fewer epochs than the naive sweep yet produces a
//! **bit-identical** trial table (same configs, same order, same
//! accuracies and curves down to the last mantissa bit).
//!
//! Real `tinyml` training throughout: the whole point is that fork
//! snapshots carry enough optimiser/RNG state for a resumed child to be
//! indistinguishable from an uninterrupted run.

use std::sync::Arc;

use hpo::algo::grid::GridSearch;
use hpo::algo::hyperband::Bracket;
use hpo::experiment::{tinyml_objective, ExperimentOptions};
use hpo::runner::materialize;
use hpo::space::{ConfigValue, ParamDomain, SearchSpace};
use hpo::stagetree::{stage_task_def, StageObjective};
use hpo::wire::{experiment_task_def, register_hpo_codecs};
use hpo::{HpoReport, HpoRunner};
use rcompss::{
    DistributedConfig, Runtime, RuntimeConfig, TaskRegistry, WorkerConfig, WorkerHandle,
    WorkerServer,
};
use tinyml::Dataset;

fn dataset() -> Arc<Dataset> {
    Arc::new(Dataset::synthetic_mnist(240, 11))
}

fn stage_objective() -> StageObjective {
    StageObjective::new(dataset(), vec![12])
}

/// A grid with every kind of late-binding divergence: the epoch axis and
/// a step-decay (every, factor) fork, per optimizer.
fn grid_space() -> SearchSpace {
    SearchSpace::new()
        .with("optimizer", ParamDomain::choice_strs(&["Adam", "SGD"]))
        .with("num_epochs", ParamDomain::choice_ints(&[2, 4]))
        .with("lr_decay_every", ParamDomain::choice_ints(&[1]))
        .with(
            "lr_decay_factor",
            ParamDomain::Choice(vec![ConfigValue::Float(0.5), ConfigValue::Float(0.25)]),
        )
}

fn sh_space() -> SearchSpace {
    SearchSpace::new()
        .with("optimizer", ParamDomain::choice_strs(&["Adam", "SGD", "RMSprop"]))
        .with("batch_size", ParamDomain::choice_ints(&[16, 32]))
}

/// One trial, bit-exact: label, accuracy bits, epochs run, per-epoch
/// accuracy and loss bits.
type ExactRow = (String, u64, u32, Vec<u64>, Vec<u64>);

/// Every bit of every trial, in report order.
fn exact_table(report: &HpoReport) -> Vec<ExactRow> {
    report
        .trials
        .iter()
        .map(|t| {
            (
                t.config.label(),
                t.outcome.accuracy.to_bits(),
                t.outcome.epochs_run,
                t.outcome.epoch_accuracy.iter().map(|a| a.to_bits()).collect(),
                t.outcome.epoch_loss.iter().map(|l| l.to_bits()).collect(),
            )
        })
        .collect()
}

fn spawn_stage_workers(n: usize, opts: &ExperimentOptions) -> Vec<WorkerHandle> {
    register_hpo_codecs();
    let objective = tinyml_objective(dataset(), vec![12]);
    let registry = TaskRegistry::new()
        .with(experiment_task_def(opts, &objective))
        .with(stage_task_def(opts, &stage_objective()));
    (0..n)
        .map(|i| {
            let cfg =
                WorkerConfig { name: format!("stage-w{i}"), cores: 2, ..WorkerConfig::default() };
            WorkerServer::bind("127.0.0.1:0", cfg, registry.clone())
                .expect("bind")
                .spawn()
                .expect("spawn")
        })
        .collect()
}

fn distributed_runtime(workers: &[WorkerHandle]) -> Runtime {
    let addrs: Vec<String> = workers.iter().map(|w| w.addr()).collect();
    Runtime::distributed(RuntimeConfig::single_node(1), &addrs, DistributedConfig::default())
        .expect("connect")
}

#[test]
fn staged_grid_is_bit_identical_to_naive_and_trains_fewer_epochs() {
    let opts = ExperimentOptions::default();
    let runner = HpoRunner::new(opts.clone());
    let space = grid_space();
    let configs = materialize(&mut GridSearch::new(&space));

    let naive = {
        let rt = Runtime::threaded(RuntimeConfig::single_node(4));
        let objective = tinyml_objective(dataset(), vec![12]);
        runner.run(&rt, &mut GridSearch::new(&space), objective).expect("naive run")
    };
    let naive_epochs: u64 = naive.trials.iter().map(|t| u64::from(t.outcome.epochs_run)).sum();

    // Threaded staged run.
    let rt = Runtime::threaded(RuntimeConfig::single_node(4));
    let (staged, stats) = runner
        .run_staged(&rt, "grid", &configs, &stage_objective(), None, |_| {})
        .expect("staged run");

    assert_eq!(
        exact_table(&staged),
        exact_table(&naive),
        "staged grid must match naive bit-for-bit"
    );
    assert_eq!(staged.algorithm, naive.algorithm);
    assert_eq!(stats.naive_epochs, naive_epochs);
    assert!(
        stats.staged_epochs < stats.naive_epochs,
        "must train strictly fewer epochs: {} vs {}",
        stats.staged_epochs,
        stats.naive_epochs
    );
    assert!(stats.forks > 0, "sharing must actually fork");

    // Distributed loopback staged run: same table again, through real
    // workers and the block plane.
    let workers = spawn_stage_workers(2, &opts);
    let drt = distributed_runtime(&workers);
    let (dstaged, dstats) = runner
        .run_staged(&drt, "grid", &configs, &stage_objective(), None, |_| {})
        .expect("distributed staged run");
    assert_eq!(exact_table(&dstaged), exact_table(&naive), "distributed staged grid must match");
    assert_eq!(dstats.staged_epochs, stats.staged_epochs);
    drop(drt);
    for w in workers {
        w.join().ok();
    }
}

#[test]
fn staged_successive_halving_is_bit_identical_and_resumes_rung_snapshots() {
    let opts = ExperimentOptions::default();
    let runner = HpoRunner::new(opts.clone());
    let space = sh_space();
    let bracket = Bracket::new(4, 2, 8, 2); // rungs: 4@2, 2@4, 1@8
    let seed = 5;

    let naive = {
        let rt = Runtime::threaded(RuntimeConfig::single_node(4));
        let objective = tinyml_objective(dataset(), vec![12]);
        runner
            .run_successive_halving(&rt, &space, objective, &bracket, seed)
            .expect("naive bracket")
    };
    assert_eq!(naive.trials.len(), 4 + 2 + 1);

    let rt = Runtime::threaded(RuntimeConfig::single_node(4));
    let (staged, stats) = runner
        .run_successive_halving_staged(&rt, &space, &stage_objective(), &bracket, seed)
        .expect("staged bracket");

    assert_eq!(
        exact_table(&staged),
        exact_table(&naive),
        "staged bracket must match naive bit-for-bit, promotion order included"
    );
    assert_eq!(stats.naive_epochs, bracket.total_epochs());
    // ASHA-resume: promoted rungs train only the budget delta, so total
    // work is at most the resumed schedule (less if rung 0 shared).
    assert!(stats.staged_epochs <= bracket.total_epochs_resumed());
    assert!(stats.staged_epochs < stats.naive_epochs);
    assert!(stats.forks >= 2, "both promotions must resume from rung snapshots");

    // Distributed loopback.
    let workers = spawn_stage_workers(2, &opts);
    let drt = distributed_runtime(&workers);
    let (dstaged, _) = runner
        .run_successive_halving_staged(&drt, &space, &stage_objective(), &bracket, seed)
        .expect("distributed staged bracket");
    assert_eq!(exact_table(&dstaged), exact_table(&naive), "distributed staged bracket must match");
    drop(drt);
    for w in workers {
        w.join().ok();
    }
}
