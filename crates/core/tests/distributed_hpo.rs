//! Full-stack distributed HPO over loopback TCP: the same grid search the
//! threaded backend runs, executed by in-process `WorkerServer`s, must
//! produce identical per-trial accuracies and the identical best config —
//! and keep producing them when a worker is killed mid-run.

use std::sync::Arc;
use std::time::Duration;

use hpo::algo::grid::GridSearch;
use hpo::experiment::{ExperimentOptions, Objective, TrialOutcome};
use hpo::space::{Config, ConfigValue, ParamDomain, SearchSpace};
use hpo::wire::{experiment_task_def, register_hpo_codecs};
use hpo::HpoRunner;
use rcompss::{
    DistributedConfig, RetryPolicy, Runtime, RuntimeConfig, TaskRegistry, WorkerConfig,
    WorkerHandle, WorkerServer,
};

/// Deterministic synthetic objective: accuracy is a pure function of the
/// config, so threaded and distributed runs must agree bit-for-bit.
fn objective(delay: Duration) -> Objective {
    Arc::new(move |config: &Config, budget: Option<u32>| {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let epochs =
            budget.map(i64::from).or_else(|| config.get_int("num_epochs")).unwrap_or(10) as f64;
        let opt_bonus = match config.get_str("optimizer") {
            Some("Adam") => 0.15,
            Some("RMSprop") => 0.08,
            _ => 0.0,
        };
        let lr = config.get_float("learning_rate").unwrap_or(1e-3);
        let acc = (0.5 + 0.004 * epochs + opt_bonus - (lr - 1e-3).abs()).clamp(0.0, 0.99);
        Ok(TrialOutcome::with_accuracy(acc))
    })
}

fn space() -> SearchSpace {
    SearchSpace::new()
        .with(
            "optimizer",
            ParamDomain::Choice(vec![
                ConfigValue::Str("Adam".into()),
                ConfigValue::Str("RMSprop".into()),
                ConfigValue::Str("SGD".into()),
            ]),
        )
        .with("num_epochs", ParamDomain::Choice(vec![ConfigValue::Int(10), ConfigValue::Int(20)]))
        .with(
            "learning_rate",
            ParamDomain::Choice(vec![ConfigValue::Float(1e-3), ConfigValue::Float(1e-2)]),
        )
}

fn spawn_workers(n: usize, opts: &ExperimentOptions, obj: &Objective) -> Vec<WorkerHandle> {
    register_hpo_codecs();
    let registry = TaskRegistry::new().with(experiment_task_def(opts, obj));
    (0..n)
        .map(|i| {
            let cfg =
                WorkerConfig { name: format!("hpo-w{i}"), cores: 2, ..WorkerConfig::default() };
            WorkerServer::bind("127.0.0.1:0", cfg, registry.clone())
                .expect("bind")
                .spawn()
                .expect("spawn")
        })
        .collect()
}

fn trial_table(report: &hpo::HpoReport) -> Vec<(String, String)> {
    let mut rows: Vec<(String, String)> = report
        .trials
        .iter()
        .map(|t| (t.config.label(), format!("{:.6}", t.outcome.accuracy)))
        .collect();
    rows.sort();
    rows
}

#[test]
fn grid_search_distributed_matches_threaded_exactly() {
    let opts = ExperimentOptions::default();
    let obj = objective(Duration::ZERO);
    let runner = HpoRunner::new(opts.clone());

    let threaded_report = {
        let rt = Runtime::threaded(RuntimeConfig::single_node(4));
        let mut algo = GridSearch::new(&space());
        runner.run(&rt, &mut algo, Arc::clone(&obj)).expect("threaded run")
    };

    let workers = spawn_workers(2, &opts, &obj);
    let addrs: Vec<String> = workers.iter().map(|w| w.addr()).collect();
    let rt =
        Runtime::distributed(RuntimeConfig::single_node(1), &addrs, DistributedConfig::default())
            .expect("connect");
    let mut algo = GridSearch::new(&space());
    let distributed_report = runner.run(&rt, &mut algo, obj).expect("distributed run");

    assert_eq!(distributed_report.trials.len(), 12, "3 optimizers × 2 epochs × 2 lrs");
    assert_eq!(trial_table(&distributed_report), trial_table(&threaded_report));
    let best_d = distributed_report.best().expect("has best");
    let best_t = threaded_report.best().expect("has best");
    assert_eq!(best_d.config.label(), best_t.config.label());
    assert_eq!(best_d.outcome.accuracy, best_t.outcome.accuracy);
}

/// A snapshot-aware objective with deterministic "training": each epoch
/// sleeps, then extends an accuracy curve that is a pure function of the
/// config and epoch index. Snapshots (epoch counter + curve) ride the
/// runtime's ambient channel keyed by [`hpo::ckpt::trial_key`], exactly
/// like `tinyml_objective_checkpointed` — so a killed worker's trials
/// resume mid-curve on the survivor, and the final table must still be
/// bit-identical to an uninterrupted run.
fn snapshotting_objective(
    epoch_ms: u64,
    attempts: &'static std::sync::Mutex<Vec<(String, u32)>>,
) -> Objective {
    Arc::new(move |config: &Config, _budget: Option<u32>| {
        let epochs = config.get_int("num_epochs").unwrap_or(10) as u32;
        let key = hpo::ckpt::trial_key(config);
        let base = match config.get_str("optimizer") {
            Some("Adam") => 0.6,
            _ => 0.5,
        };
        let acc_at = |e: u32| base + 0.01 * f64::from(e + 1);
        let start = rcompss::snapshot::load(key)
            .map(|b| u32::from_le_bytes(b[..4].try_into().unwrap()))
            .unwrap_or(0);
        attempts.lock().unwrap().push((config.label(), start));
        let mut curve: Vec<f64> = (0..start).map(acc_at).collect();
        for e in start..epochs {
            std::thread::sleep(Duration::from_millis(epoch_ms));
            curve.push(acc_at(e));
            rcompss::snapshot::save(key, &(e + 1).to_le_bytes());
        }
        rcompss::snapshot::discard(key);
        Ok(TrialOutcome {
            accuracy: *curve.last().unwrap(),
            epochs_run: epochs,
            epoch_accuracy: curve,
            epoch_loss: vec![],
            error: None,
        })
    })
}

#[test]
fn killed_worker_resumes_trials_from_snapshots_bit_identically() {
    static ATTEMPTS: std::sync::Mutex<Vec<(String, u32)>> = std::sync::Mutex::new(Vec::new());

    let space = SearchSpace::new()
        .with(
            "optimizer",
            ParamDomain::Choice(vec![
                ConfigValue::Str("Adam".into()),
                ConfigValue::Str("SGD".into()),
            ]),
        )
        .with("num_epochs", ParamDomain::Choice(vec![ConfigValue::Int(12)]));
    let opts = ExperimentOptions::default();
    let obj = snapshotting_objective(40, &ATTEMPTS);
    let runner = HpoRunner::new(opts.clone());

    let reference = {
        let rt = Runtime::threaded(RuntimeConfig::single_node(4));
        runner
            .run(&rt, &mut GridSearch::new(&space), Arc::clone(&obj))
            .expect("uninterrupted reference")
    };
    ATTEMPTS.lock().unwrap().clear();

    let workers = spawn_workers(2, &opts, &obj);
    let addrs: Vec<String> = workers.iter().map(|w| w.addr()).collect();
    let dcfg = DistributedConfig {
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(300),
        ..DistributedConfig::default()
    };
    let rt = Runtime::distributed(
        RuntimeConfig::single_node(1)
            .with_retry(RetryPolicy { max_attempts: 4, same_node_first: false }),
        &addrs,
        dcfg,
    )
    .expect("connect");

    // Kill one worker a few epochs in: its in-flight trials have
    // checkpointed (one snapshot per 40ms epoch) and must resume on the
    // survivor from where they stopped, not from epoch 0.
    let stopper = workers[0].stopper();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        stopper();
    });
    let report =
        runner.run(&rt, &mut GridSearch::new(&space), obj).expect("run survives worker loss");
    killer.join().unwrap();

    assert_eq!(report.trials.len(), 2);
    assert!(report.trials.iter().all(|t| !t.outcome.is_failed()));
    let table = |r: &hpo::HpoReport| {
        let mut rows: Vec<(String, u64, Vec<u64>)> = r
            .trials
            .iter()
            .map(|t| {
                (
                    t.config.label(),
                    t.outcome.accuracy.to_bits(),
                    t.outcome.epoch_accuracy.iter().map(|a| a.to_bits()).collect(),
                )
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(table(&report), table(&reference), "resumed table bit-identical");

    let snap = rt.metrics().snapshot();
    assert_eq!(snap.counter("rcompss_workers_lost_total"), Some(1));
    assert!(snap.counter("rcompss_tasks_retried_total").unwrap_or(0) > 0);
    // Epoch-counter assertion: some retried attempt started mid-trial.
    let attempts = ATTEMPTS.lock().unwrap().clone();
    assert!(
        attempts.iter().any(|(_, start)| *start > 0),
        "a replacement attempt resumed from a snapshot, not epoch 0: {attempts:?}"
    );
}

#[test]
fn killed_worker_mid_hpo_run_completes_via_resubmission() {
    let opts = ExperimentOptions::default();
    let obj = objective(Duration::from_millis(60));
    let runner = HpoRunner::new(opts.clone());

    let workers = spawn_workers(3, &opts, &obj);
    let addrs: Vec<String> = workers.iter().map(|w| w.addr()).collect();
    let dcfg = DistributedConfig {
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(300),
        ..DistributedConfig::default()
    };
    let rt = Runtime::distributed(
        RuntimeConfig::single_node(1)
            .with_retry(RetryPolicy { max_attempts: 4, same_node_first: false }),
        &addrs,
        dcfg,
    )
    .expect("connect");

    // Kill one worker shortly after the first wave lands on it.
    let victim = workers[0].addr();
    let stopper = workers[0].stopper();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        stopper();
    });

    let mut algo = GridSearch::new(&space());
    let report = runner.run(&rt, &mut algo, obj).expect("run survives worker loss");
    killer.join().unwrap();

    assert_eq!(report.trials.len(), 12);
    assert!(report.trials.iter().all(|t| !t.outcome.is_failed()), "no failed trials");

    let snap = rt.metrics().snapshot();
    assert_eq!(snap.counter("rcompss_workers_lost_total"), Some(1), "lost {victim}");
    assert!(
        snap.counter("rcompss_tasks_retried_total").unwrap_or(0) > 0,
        "tasks in flight on the killed worker were resubmitted"
    );
}
