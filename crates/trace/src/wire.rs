//! Compact binary codec for trace records.
//!
//! Workers batch their local [`Record`]s and ship them to the driver inside
//! an opaque `rnet` `TraceChunk` frame; this module defines the bytes inside
//! that frame. It is deliberately self-contained (LEB128 varints plus
//! length-prefixed UTF-8 strings, no dependency on the network crate) so the
//! dependency arrow keeps pointing runtime → tracing and never sideways.
//!
//! Layout: one version byte, a record count, then each record as a tag byte
//! followed by its fields. Task-function names are written per record but
//! re-interned into shared `Arc<str>`s on decode, so a thousand-task chunk
//! still decodes to a thousand records sharing one allocation per function.
//!
//! ```
//! use paratrace::record::{CoreId, Record, StateKind, TaskRef};
//! use paratrace::wire::{decode_records, encode_records};
//!
//! let records = vec![Record::State {
//!     core: CoreId::new(0, 3),
//!     start: 10,
//!     end: 40,
//!     state: StateKind::Running(TaskRef::new(7, "graph.experiment")),
//! }];
//! let bytes = encode_records(&records);
//! assert_eq!(decode_records(&bytes).unwrap(), records);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use crate::record::{CoreId, EventKind, Record, StateKind, TaskRef};

/// Codec version written as the first byte of every chunk.
pub const WIRE_VERSION: u8 = 1;

const T_STATE: u8 = 0;
const T_EVENT: u8 = 1;

const S_IDLE: u8 = 0;
const S_RUNNING: u8 = 1;
const S_RESERVED: u8 = 2;
const S_TRANSFERRING: u8 = 3;

const E_DISPATCH: u8 = 0;
const E_END: u8 = 1;
const E_FAILURE: u8 = 2;
const E_NODE_FAILURE: u8 = 3;
const E_USER_FLAG: u8 = 4;

/// Why a chunk failed to decode. Any error condemns the whole chunk — the
/// driver drops it rather than guessing at partial records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDecodeError(pub String);

impl std::fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace chunk decode error: {}", self.0)
    }
}

impl std::error::Error for WireDecodeError {}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
    names: HashMap<String, Arc<str>>,
}

impl<'a> Cursor<'a> {
    fn byte(&mut self) -> Result<u8, WireDecodeError> {
        let b = *self.buf.get(self.at).ok_or_else(|| WireDecodeError("truncated chunk".into()))?;
        self.at += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, WireDecodeError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireDecodeError("overlong varint".into()))
    }

    fn str_interned(&mut self) -> Result<Arc<str>, WireDecodeError> {
        let len = self.varint()? as usize;
        let end = self
            .at
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireDecodeError("truncated string".into()))?;
        let s = std::str::from_utf8(&self.buf[self.at..end])
            .map_err(|_| WireDecodeError("invalid UTF-8 in name".into()))?;
        self.at = end;
        if let Some(interned) = self.names.get(s) {
            return Ok(Arc::clone(interned));
        }
        let interned: Arc<str> = Arc::from(s);
        self.names.insert(s.to_string(), Arc::clone(&interned));
        Ok(interned)
    }

    fn task_ref(&mut self) -> Result<TaskRef, WireDecodeError> {
        let id = self.varint()?;
        let name = self.str_interned()?;
        Ok(TaskRef { id, name })
    }

    fn core(&mut self) -> Result<CoreId, WireDecodeError> {
        let node = self.varint()? as u32;
        let core = self.varint()? as u32;
        Ok(CoreId { node, core })
    }
}

fn put_task_ref(out: &mut Vec<u8>, t: &TaskRef) {
    put_varint(out, t.id);
    put_str(out, &t.name);
}

/// Serialise a batch of records into one chunk.
pub fn encode_records(records: &[Record]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + records.len() * 16);
    out.push(WIRE_VERSION);
    put_varint(&mut out, records.len() as u64);
    for r in records {
        match r {
            Record::State { core, start, end, state } => {
                out.push(T_STATE);
                put_varint(&mut out, u64::from(core.node));
                put_varint(&mut out, u64::from(core.core));
                put_varint(&mut out, *start);
                put_varint(&mut out, *end);
                match state {
                    StateKind::Idle => out.push(S_IDLE),
                    StateKind::Running(t) => {
                        out.push(S_RUNNING);
                        put_task_ref(&mut out, t);
                    }
                    StateKind::RuntimeReserved => out.push(S_RESERVED),
                    StateKind::Transferring { bytes } => {
                        out.push(S_TRANSFERRING);
                        put_varint(&mut out, *bytes);
                    }
                }
            }
            Record::Event { core, time, kind } => {
                out.push(T_EVENT);
                put_varint(&mut out, u64::from(core.node));
                put_varint(&mut out, u64::from(core.core));
                put_varint(&mut out, *time);
                match kind {
                    EventKind::TaskDispatch(t) => {
                        out.push(E_DISPATCH);
                        put_task_ref(&mut out, t);
                    }
                    EventKind::TaskEnd(t) => {
                        out.push(E_END);
                        put_task_ref(&mut out, t);
                    }
                    EventKind::TaskFailure { task, attempt } => {
                        out.push(E_FAILURE);
                        put_task_ref(&mut out, task);
                        put_varint(&mut out, u64::from(*attempt));
                    }
                    EventKind::NodeFailure => out.push(E_NODE_FAILURE),
                    EventKind::UserFlag { event_type, value } => {
                        out.push(E_USER_FLAG);
                        put_varint(&mut out, u64::from(*event_type));
                        put_varint(&mut out, *value);
                    }
                }
            }
        }
    }
    out
}

/// Decode one chunk back into records. Trailing bytes after the declared
/// record count are an error (a truncated or spliced chunk must not pass).
pub fn decode_records(bytes: &[u8]) -> Result<Vec<Record>, WireDecodeError> {
    let mut c = Cursor { buf: bytes, at: 0, names: HashMap::new() };
    let version = c.byte()?;
    if version != WIRE_VERSION {
        return Err(WireDecodeError(format!("unsupported chunk version {version}")));
    }
    let count = c.varint()? as usize;
    let mut records = Vec::with_capacity(count.min(64 * 1024));
    for _ in 0..count {
        let tag = c.byte()?;
        let record = match tag {
            T_STATE => {
                let core = c.core()?;
                let start = c.varint()?;
                let end = c.varint()?;
                let state = match c.byte()? {
                    S_IDLE => StateKind::Idle,
                    S_RUNNING => StateKind::Running(c.task_ref()?),
                    S_RESERVED => StateKind::RuntimeReserved,
                    S_TRANSFERRING => StateKind::Transferring { bytes: c.varint()? },
                    other => return Err(WireDecodeError(format!("bad state kind {other}"))),
                };
                Record::State { core, start, end, state }
            }
            T_EVENT => {
                let core = c.core()?;
                let time = c.varint()?;
                let kind = match c.byte()? {
                    E_DISPATCH => EventKind::TaskDispatch(c.task_ref()?),
                    E_END => EventKind::TaskEnd(c.task_ref()?),
                    E_FAILURE => {
                        EventKind::TaskFailure { task: c.task_ref()?, attempt: c.varint()? as u32 }
                    }
                    E_NODE_FAILURE => EventKind::NodeFailure,
                    E_USER_FLAG => {
                        EventKind::UserFlag { event_type: c.varint()? as u32, value: c.varint()? }
                    }
                    other => return Err(WireDecodeError(format!("bad event kind {other}"))),
                };
                Record::Event { core, time, kind }
            }
            other => return Err(WireDecodeError(format!("bad record tag {other}"))),
        };
        records.push(record);
    }
    if c.at != bytes.len() {
        return Err(WireDecodeError(format!("{} trailing bytes", bytes.len() - c.at)));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        let t = TaskRef::new(7, "graph.experiment");
        vec![
            Record::State {
                core: CoreId::new(0, 3),
                start: 10,
                end: 40,
                state: StateKind::Running(t.clone()),
            },
            Record::State { core: CoreId::new(1, 0), start: 0, end: 5, state: StateKind::Idle },
            Record::State {
                core: CoreId::new(2, 1),
                start: 3,
                end: 9,
                state: StateKind::Transferring { bytes: 1 << 33 },
            },
            Record::State {
                core: CoreId::new(0, 0),
                start: 0,
                end: 100,
                state: StateKind::RuntimeReserved,
            },
            Record::Event {
                core: CoreId::new(0, 3),
                time: 10,
                kind: EventKind::TaskDispatch(t.clone()),
            },
            Record::Event {
                core: CoreId::new(0, 3),
                time: 40,
                kind: EventKind::TaskEnd(t.clone()),
            },
            Record::Event {
                core: CoreId::new(0, 3),
                time: 41,
                kind: EventKind::TaskFailure { task: t, attempt: 2 },
            },
            Record::Event { core: CoreId::new(1, 0), time: 50, kind: EventKind::NodeFailure },
            Record::Event {
                core: CoreId::new(1, 0),
                time: 51,
                kind: EventKind::UserFlag { event_type: 42, value: 9 },
            },
        ]
    }

    #[test]
    fn round_trips_every_record_shape() {
        let records = sample();
        let bytes = encode_records(&records);
        assert_eq!(decode_records(&bytes).unwrap(), records);
    }

    #[test]
    fn empty_chunk_round_trips() {
        let bytes = encode_records(&[]);
        assert_eq!(decode_records(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn names_are_interned_on_decode() {
        let records = sample();
        let decoded = decode_records(&encode_records(&records)).unwrap();
        let names: Vec<&TaskRef> = decoded.iter().filter_map(|r| r.running_task()).collect();
        let dispatch_name = decoded
            .iter()
            .find_map(|r| match r {
                Record::Event { kind: EventKind::TaskDispatch(t), .. } => Some(t),
                _ => None,
            })
            .unwrap();
        assert!(
            Arc::ptr_eq(&names[0].name, &dispatch_name.name),
            "same function name shares one allocation"
        );
    }

    #[test]
    fn truncation_and_garbage_fail_cleanly() {
        let bytes = encode_records(&sample());
        for cut in 0..bytes.len() {
            assert!(decode_records(&bytes[..cut]).is_err(), "prefix of {cut} bytes must fail");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_records(&padded).is_err(), "trailing bytes must fail");
        assert!(decode_records(&[WIRE_VERSION + 1]).is_err(), "future version rejected");
        assert!(decode_records(&[]).is_err());
    }
}
