//! Higher-level trace reports: Paraver's "profile" views as data.
//!
//! [`per_task_profile`] mirrors Paraver's per-function statistics table
//! (how often each task function ran, for how long), and
//! [`utilisation_csv`] exports the busy-core timeline that the paper's
//! timeline figures visualise, ready for any plotting tool.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::record::{Record, StateKind};

/// Aggregate execution statistics of one task function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NameProfile {
    /// Number of executions (attempts) observed.
    pub count: usize,
    /// Total core-time consumed, µs.
    pub total_core_us: u64,
    /// Shortest execution, µs.
    pub min_us: u64,
    /// Longest execution, µs.
    pub max_us: u64,
}

impl NameProfile {
    /// Mean execution time, µs.
    pub fn mean_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.total_core_us / self.count as u64
        }
    }
}

/// Per-task-function profile over a record snapshot.
///
/// A task instance spanning several cores counts once per instance, with
/// its duration measured once and its core-time summed over cores.
pub fn per_task_profile(records: &[Record]) -> BTreeMap<String, NameProfile> {
    // (task id, start, end) dedupes multi-core intervals of one execution.
    let mut seen = std::collections::BTreeSet::new();
    let mut out: BTreeMap<String, NameProfile> = BTreeMap::new();
    for r in records {
        if let Record::State { start, end, state: StateKind::Running(t), .. } = r {
            let p = out.entry(t.name.to_string()).or_default();
            p.total_core_us += end - start;
            if seen.insert((t.id, *start, *end)) {
                let d = end - start;
                p.count += 1;
                p.min_us = if p.count == 1 { d } else { p.min_us.min(d) };
                p.max_us = p.max_us.max(d);
            }
        }
    }
    out
}

/// Render the profile as an aligned text table.
pub fn profile_table(records: &[Record]) -> String {
    let profile = per_task_profile(records);
    let mut out = format!(
        "{:<24} {:>7} {:>12} {:>12} {:>12} {:>14}\n",
        "task", "runs", "min", "mean", "max", "total core-time"
    );
    for (name, p) in profile {
        let _ = writeln!(
            out,
            "{:<24} {:>7} {:>12} {:>12} {:>12} {:>14}",
            name,
            p.count,
            crate::fmt_duration(p.min_us),
            crate::fmt_duration(p.mean_us()),
            crate::fmt_duration(p.max_us),
            crate::fmt_duration(p.total_core_us),
        );
    }
    out
}

/// Busy-core timeline as CSV (`time_us,busy_cores`), sampled every
/// `bucket_us` µs of trace time.
pub fn utilisation_csv(records: &[Record], bucket_us: u64) -> String {
    assert!(bucket_us > 0, "bucket size must be positive");
    let horizon = records.iter().map(Record::end_time).max().unwrap_or(0);
    let mut out = String::from("time_us,busy_cores\n");
    let mut t = 0u64;
    while t <= horizon {
        let busy = records
            .iter()
            .filter(|r| {
                matches!(r, Record::State { start, end, state: StateKind::Running(_), .. }
                    if *start <= t && t < *end)
            })
            .count();
        let _ = writeln!(out, "{t},{busy}");
        t += bucket_us;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CoreId, TaskRef};

    fn run(core: CoreId, start: u64, end: u64, id: u64, name: &str) -> Record {
        Record::State { core, start, end, state: StateKind::Running(TaskRef::new(id, name)) }
    }

    #[test]
    fn profile_aggregates_per_name() {
        let records = vec![
            run(CoreId::new(0, 0), 0, 100, 1, "experiment"),
            run(CoreId::new(0, 1), 0, 300, 2, "experiment"),
            run(CoreId::new(0, 2), 0, 50, 3, "plot"),
        ];
        let p = per_task_profile(&records);
        assert_eq!(p.len(), 2);
        let e = &p["experiment"];
        assert_eq!(e.count, 2);
        assert_eq!(e.min_us, 100);
        assert_eq!(e.max_us, 300);
        assert_eq!(e.mean_us(), 200);
        assert_eq!(e.total_core_us, 400);
        assert_eq!(p["plot"].count, 1);
    }

    #[test]
    fn multicore_execution_counts_once_but_sums_core_time() {
        let records = vec![
            run(CoreId::new(0, 0), 0, 100, 1, "big"),
            run(CoreId::new(0, 1), 0, 100, 1, "big"),
            run(CoreId::new(0, 2), 0, 100, 1, "big"),
        ];
        let p = per_task_profile(&records);
        let b = &p["big"];
        assert_eq!(b.count, 1, "one execution");
        assert_eq!(b.total_core_us, 300, "three cores × 100µs");
        assert_eq!(b.mean_us(), 300, "mean of core-time per execution");
    }

    #[test]
    fn profile_table_renders_rows() {
        let records = vec![run(CoreId::new(0, 0), 0, 100, 1, "experiment")];
        let t = profile_table(&records);
        assert!(t.contains("experiment"));
        assert!(t.contains("runs"));
        assert!(t.lines().count() == 2);
    }

    #[test]
    fn utilisation_csv_samples_buckets() {
        let records =
            vec![run(CoreId::new(0, 0), 0, 100, 1, "a"), run(CoreId::new(0, 1), 50, 100, 2, "a")];
        let csv = utilisation_csv(&records, 50);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_us,busy_cores");
        assert_eq!(lines[1], "0,1");
        assert_eq!(lines[2], "50,2");
        assert_eq!(lines[3], "100,0", "intervals are half-open");
    }

    #[test]
    fn empty_trace_reports_cleanly() {
        assert!(per_task_profile(&[]).is_empty());
        assert_eq!(utilisation_csv(&[], 10).lines().count(), 2, "header + t=0 row");
        assert_eq!(NameProfile::default().mean_us(), 0);
    }

    #[test]
    #[should_panic(expected = "bucket size")]
    fn zero_bucket_rejected() {
        let _ = utilisation_csv(&[], 0);
    }
}
