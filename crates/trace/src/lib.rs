//! `paratrace` — Extrae/Paraver-style tracing for the rcompss runtime.
//!
//! The paper instruments PyCOMPSs with [Extrae], which captures events during
//! program execution and generates [Paraver] traces; Figures 4–6 of the paper
//! are Paraver timelines (X axis = time, Y axis = resource, i.e. cores and
//! nodes). This crate reproduces that tooling layer:
//!
//! * [`collector::TraceCollector`] — a thread-safe, cheaply-disableable event
//!   sink. The paper notes tracing is toggled "using a simple flag"; the
//!   collector honours that by becoming a near-no-op when disabled.
//! * [`record`] — the event/state record model (task start/end, data
//!   transfers, scheduling decisions, user flags).
//! * [`prv`] — a Paraver-compatible `.prv`/`.row`/`.pcf` writer.
//! * [`chrome`] — a Chrome `trace_event` JSON writer, so the same records
//!   open in `chrome://tracing` and Perfetto without any BSC tooling.
//! * [`gantt`] — an ASCII Gantt renderer used to regenerate the *shape* of
//!   Figures 4, 5 and 6 in a terminal.
//! * [`stats`] — quantitative trace analysis (makespan, per-core utilisation,
//!   parallelism profile) standing in for Paraver's analysis views.
//! * [`report`] — per-task-function profiles and busy-core timelines, the
//!   Paraver "profile" tables as data/CSV.
//! * [`wire`] — a compact binary codec for record batches, the payload of
//!   the distributed backend's `TraceChunk` frames.
//! * [`merge`] — NTP-style clock-offset estimation plus the rebase/splice
//!   step that turns per-worker traces into one driver-timeline trace.
//!
//! All timestamps are `u64` microseconds. Traces produced from the simulated
//! backend use virtual time; traces from the threaded backend use wall time
//! relative to runtime start. The two are deliberately indistinguishable at
//! this layer.
//!
//! [Extrae]: https://tools.bsc.es/extrae
//! [Paraver]: https://tools.bsc.es/paraver

#![deny(missing_docs)]

pub mod chrome;
pub mod collector;
pub mod gantt;
pub mod merge;
pub mod prv;
pub mod record;
pub mod report;
pub mod stats;
pub mod wire;

pub use collector::TraceCollector;
pub use merge::{ClockSample, ClockSync, WorkerTrace};
pub use record::{CoreId, EventKind, Record, StateKind, TaskRef};
pub use stats::TraceStats;

/// One microsecond expressed in trace time units.
pub const MICROSECOND: u64 = 1;
/// One millisecond expressed in trace time units.
pub const MILLISECOND: u64 = 1_000;
/// One second expressed in trace time units.
pub const SECOND: u64 = 1_000_000;
/// One minute expressed in trace time units.
pub const MINUTE: u64 = 60 * SECOND;

/// Render a trace duration as a short human string (`"29.1m"`, `"3.4s"` …).
pub fn fmt_duration(us: u64) -> String {
    if us >= MINUTE {
        format!("{:.1}m", us as f64 / MINUTE as f64)
    } else if us >= SECOND {
        format!("{:.1}s", us as f64 / SECOND as f64)
    } else if us >= MILLISECOND {
        format!("{:.1}ms", us as f64 / MILLISECOND as f64)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting_picks_natural_unit() {
        assert_eq!(fmt_duration(500), "500us");
        assert_eq!(fmt_duration(2_500), "2.5ms");
        assert_eq!(fmt_duration(3 * SECOND), "3.0s");
        assert_eq!(fmt_duration(29 * MINUTE + 6 * SECOND), "29.1m");
    }
}
