//! Clock alignment and trace merging across nodes.
//!
//! Worker trace records are stamped on the worker's own clock (µs since the
//! worker process's epoch), so they cannot be drawn next to driver records
//! until they are rebased onto the driver timeline. This module holds both
//! halves of that job:
//!
//! * [`estimate_offset`] / [`ClockSync`] — NTP-style offset and round-trip
//!   estimation from the four timestamps a `Heartbeat`/`HeartbeatAck`
//!   exchange yields. The recovered offset is accurate to within half the
//!   round trip (the classic NTP bound), so the driver keeps the sample
//!   with the *smallest* RTT — the probe least distorted by queueing.
//! * [`merge`] — rebase each worker's records by its estimated offset,
//!   clamp task spans into the driver-observed dispatch→completion window
//!   (so clock error can never produce a pre-submit or negative-duration
//!   interval), and splice them into the driver's own records, replacing
//!   the driver's synthesised execution estimates with worker ground truth
//!   wherever a worker span arrived.
//!
//! ```
//! use paratrace::merge::estimate_offset;
//!
//! // Driver sends at t0=100; the worker clock runs 1_000 ahead and each
//! // direction takes 10 µs: the worker sees the probe at 1_110, replies at
//! // 1_120, and the driver hears back at t3=130.
//! let s = estimate_offset(100, 1_110, 1_120, 130);
//! assert_eq!(s.rtt_us, 20);
//! assert_eq!(s.offset_us, 1_000);
//! ```

use std::collections::{HashMap, HashSet};

use crate::record::{EventKind, Record, StateKind};

/// One offset/RTT measurement from a single probe exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockSample {
    /// Estimated `worker_clock - driver_clock`, µs. Add the *negation* to a
    /// worker timestamp to land on the driver timeline.
    pub offset_us: i64,
    /// Estimated network round trip (send → ack, minus remote think time).
    pub rtt_us: u64,
}

/// NTP's four-timestamp offset estimator.
///
/// `t0`: local clock when the probe was sent. `t1`: remote clock when it
/// arrived. `t2`: remote clock when the ack left. `t3`: local clock when
/// the ack arrived. Offset = ((t1−t0)+(t2−t3))/2; the error is bounded by
/// RTT/2, tight when the two directions have symmetric delay.
pub fn estimate_offset(t0: u64, t1: u64, t2: u64, t3: u64) -> ClockSample {
    let fwd = t1 as i64 - t0 as i64;
    let back = t2 as i64 - t3 as i64;
    let offset_us = (fwd + back) / 2;
    let rtt = (t3 as i64 - t0 as i64) - (t2 as i64 - t1 as i64);
    ClockSample { offset_us, rtt_us: rtt.max(0) as u64 }
}

/// Running per-peer clock estimate: feeds on probe samples, keeps the one
/// with the smallest RTT (the tightest error bound).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClockSync {
    best: Option<ClockSample>,
    samples: u64,
}

impl ClockSync {
    /// Fold in one probe exchange.
    pub fn observe(&mut self, t0: u64, t1: u64, t2: u64, t3: u64) -> ClockSample {
        let sample = estimate_offset(t0, t1, t2, t3);
        self.samples += 1;
        match self.best {
            Some(best) if best.rtt_us <= sample.rtt_us => {}
            _ => self.best = Some(sample),
        }
        sample
    }

    /// The current best estimate, if any probe completed yet.
    pub fn best(&self) -> Option<ClockSample> {
        self.best
    }

    /// `worker − driver` offset of the best sample (0 before any sample).
    pub fn offset_us(&self) -> i64 {
        self.best.map_or(0, |s| s.offset_us)
    }

    /// RTT of the best sample (0 before any sample).
    pub fn rtt_us(&self) -> u64 {
        self.best.map_or(0, |s| s.rtt_us)
    }

    /// Number of probes folded in.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// One worker's contribution to a merged trace.
#[derive(Debug, Clone)]
pub struct WorkerTrace {
    /// Driver-side node id of the worker; worker-local records (which carry
    /// node 0, the only node a worker knows) are rewritten to it.
    pub node: u32,
    /// Estimated `worker_clock - driver_clock` for this worker.
    pub offset_us: i64,
    /// The worker's records, on its own clock.
    pub records: Vec<Record>,
}

/// Map a worker timestamp onto the driver timeline, saturating at zero.
fn rebase_time(t: u64, offset_us: i64) -> u64 {
    let shifted = t as i64 - offset_us;
    shifted.max(0) as u64
}

/// Driver-observed `[dispatch, completion]` window per task id, used to
/// clamp rebased worker spans: residual clock error (≤ RTT/2) must never
/// push an execution interval before its own dispatch or past its observed
/// completion.
pub type TaskBounds = HashMap<u64, (u64, u64)>;

fn clamp_span(start: u64, end: u64, bounds: Option<&(u64, u64)>) -> (u64, u64) {
    let (start, end) = match bounds {
        Some(&(lo, hi)) => (start.clamp(lo, hi), end.clamp(lo, hi)),
        None => (start, end),
    };
    (start, end.max(start))
}

/// Rebase every worker's records onto the driver timeline and merge them
/// with the driver's own records into one time-sorted trace.
///
/// Driver-synthesised `Running` spans (its completion-time estimate of what
/// the worker did) are dropped for any `(node, task)` that shipped a real
/// worker-side span — ground truth replaces the estimate; tasks whose
/// chunks were lost (worker died, backpressure) keep the driver estimate so
/// the trace stays complete.
pub fn merge(driver: Vec<Record>, workers: Vec<WorkerTrace>, bounds: &TaskBounds) -> Vec<Record> {
    let mut merged = Vec::with_capacity(driver.len());
    let mut covered: HashSet<(u32, u64)> = HashSet::new();
    for w in &workers {
        for r in &w.records {
            if let Some(t) = r.running_task() {
                covered.insert((w.node, t.id));
            }
        }
    }
    for r in driver {
        let replaced = r.running_task().is_some_and(|t| covered.contains(&(r.core().node, t.id)));
        if !replaced {
            merged.push(r);
        }
    }
    for w in workers {
        for r in w.records {
            merged.push(rebase_record(r, w.node, w.offset_us, bounds));
        }
    }
    merged.sort_by_key(|r| (r.time(), r.core(), r.end_time()));
    merged
}

fn rebase_record(r: Record, node: u32, offset_us: i64, bounds: &TaskBounds) -> Record {
    match r {
        Record::State { mut core, start, end, state } => {
            core.node = node;
            let task_bounds = match &state {
                StateKind::Running(t) => bounds.get(&t.id),
                _ => None,
            };
            let (start, end) =
                clamp_span(rebase_time(start, offset_us), rebase_time(end, offset_us), task_bounds);
            Record::State { core, start, end, state }
        }
        Record::Event { mut core, time, kind } => {
            core.node = node;
            let task_bounds = match &kind {
                EventKind::TaskDispatch(t) | EventKind::TaskEnd(t) => bounds.get(&t.id),
                EventKind::TaskFailure { task, .. } => bounds.get(&task.id),
                _ => None,
            };
            let mut time = rebase_time(time, offset_us);
            if let Some(&(lo, hi)) = task_bounds {
                time = time.clamp(lo, hi);
            }
            Record::Event { core, time, kind }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CoreId, TaskRef};

    fn run_span(node: u32, core: u32, id: u64, start: u64, end: u64) -> Record {
        Record::State {
            core: CoreId::new(node, core),
            start,
            end,
            state: StateKind::Running(TaskRef::new(id, "graph.experiment")),
        }
    }

    #[test]
    fn estimator_recovers_symmetric_offset_exactly() {
        // Worker clock 5_000 ahead, 20 µs each way.
        let s = estimate_offset(100, 5_120, 5_130, 150);
        assert_eq!(s.offset_us, 5_000);
        assert_eq!(s.rtt_us, 40);
    }

    #[test]
    fn estimator_handles_worker_behind_driver() {
        // Worker clock 400 behind, 10 µs each way.
        let s = estimate_offset(1_000, 610, 615, 1_025);
        assert_eq!(s.offset_us, -400);
        assert_eq!(s.rtt_us, 20);
    }

    #[test]
    fn clock_sync_keeps_min_rtt_sample() {
        let mut cs = ClockSync::default();
        cs.observe(0, 1_500, 1_510, 1_000); // rtt 990: congested probe
        cs.observe(2_000, 3_010, 3_012, 2_020); // rtt 18: clean probe
        cs.observe(4_000, 5_400, 5_410, 4_800); // rtt 790: congested again
        assert_eq!(cs.rtt_us(), 18);
        assert_eq!(cs.offset_us(), 1_001);
        assert_eq!(cs.samples(), 3);
    }

    #[test]
    fn merge_rebases_and_rewrites_node() {
        // Worker clock is 1_000 ahead; its span of task 9 was recorded at
        // [1_100, 1_200] locally → [100, 200] on the driver timeline.
        let workers = vec![WorkerTrace {
            node: 2,
            offset_us: 1_000,
            records: vec![run_span(0, 1, 9, 1_100, 1_200)],
        }];
        let merged = merge(vec![], workers, &TaskBounds::new());
        assert_eq!(merged, vec![run_span(2, 1, 9, 100, 200)]);
    }

    #[test]
    fn merge_prefers_worker_ground_truth_per_task() {
        let driver = vec![
            run_span(2, 1, 9, 90, 210),   // driver estimate of task 9: replaced
            run_span(2, 1, 10, 300, 400), // chunk lost for task 10: kept
            Record::Event {
                core: CoreId::new(2, 1),
                time: 210,
                kind: EventKind::TaskEnd(TaskRef::new(9, "graph.experiment")),
            },
        ];
        let workers =
            vec![WorkerTrace { node: 2, offset_us: 0, records: vec![run_span(0, 1, 9, 100, 200)] }];
        let merged = merge(driver, workers, &TaskBounds::new());
        let spans: Vec<&Record> = merged.iter().filter(|r| r.running_task().is_some()).collect();
        assert_eq!(spans.len(), 2, "one span per task: {merged:?}");
        assert_eq!(*spans[0], run_span(2, 1, 9, 100, 200), "worker span won");
        assert_eq!(*spans[1], run_span(2, 1, 10, 300, 400), "driver estimate kept");
        assert!(
            merged.iter().any(|r| matches!(r, Record::Event { .. })),
            "driver events survive the merge"
        );
    }

    #[test]
    fn bounds_clamp_out_pre_submit_and_negative_spans() {
        let mut bounds = TaskBounds::new();
        bounds.insert(9, (150, 400));
        // Offset error makes the rebased span [100, 200]; the driver knows
        // the task was dispatched at 150, so the span is clamped into the
        // window and keeps a non-negative duration.
        let workers = vec![WorkerTrace {
            node: 1,
            offset_us: 1_000,
            records: vec![run_span(0, 0, 9, 1_100, 1_200)],
        }];
        let merged = merge(vec![], workers, &bounds);
        let Record::State { start, end, .. } = merged[0] else { panic!("state expected") };
        assert_eq!((start, end), (150, 200));
        assert!(end >= start);

        // An offset so wrong the whole span lands before zero still clamps.
        let workers = vec![WorkerTrace {
            node: 1,
            offset_us: 10_000,
            records: vec![run_span(0, 0, 9, 1_100, 1_200)],
        }];
        let merged = merge(vec![], workers, &bounds);
        let Record::State { start, end, .. } = merged[0] else { panic!("state expected") };
        assert_eq!((start, end), (150, 150), "clamped to the window floor");
    }

    #[test]
    fn merge_output_is_time_sorted() {
        let driver = vec![run_span(0, 0, 1, 500, 600)];
        let workers = vec![WorkerTrace {
            node: 1,
            offset_us: 0,
            records: vec![run_span(0, 0, 2, 100, 200), run_span(0, 1, 3, 700, 800)],
        }];
        let merged = merge(driver, workers, &TaskBounds::new());
        let times: Vec<u64> = merged.iter().map(|r| r.time()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }
}
