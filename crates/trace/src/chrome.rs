//! Chrome `trace_event` JSON export.
//!
//! Writes a record snapshot in the [Trace Event Format] consumed by
//! `chrome://tracing` and [Perfetto] (ui.perfetto.dev → "Open trace file"),
//! complementing the Paraver export in [`crate::prv`] with a viewer that
//! needs no BSC tooling:
//!
//! * each cluster **node** becomes a process (`pid`), each **core** a thread
//!   (`tid`), named through `"M"` metadata events;
//! * state intervals become `"X"` complete events (`ts`/`dur` in µs, which
//!   is the format's native unit — no scaling needed);
//! * point events become `"i"` instant events with thread scope.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use std::fmt::Write as _;

use crate::record::{EventKind, Record, StateKind};

/// Escape a string for a JSON string literal (no surrounding quotes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Slice name, category and args for a state record.
fn state_fields(state: &StateKind) -> (String, &'static str, String) {
    match state {
        StateKind::Running(t) => (esc(&t.name), "task", format!("{{\"task_id\":{}}}", t.id)),
        StateKind::RuntimeReserved => ("runtime reserved".into(), "runtime", "{}".into()),
        StateKind::Transferring { bytes } => {
            ("transfer".into(), "transfer", format!("{{\"bytes\":{bytes}}}"))
        }
        StateKind::Idle => ("idle".into(), "idle", "{}".into()),
    }
}

/// Instant-event name and args for a point event.
fn event_fields(kind: &EventKind) -> (String, String) {
    match kind {
        EventKind::TaskDispatch(t) => {
            (format!("dispatch {}", esc(&t.name)), format!("{{\"task_id\":{}}}", t.id))
        }
        EventKind::TaskEnd(t) => {
            (format!("end {}", esc(&t.name)), format!("{{\"task_id\":{}}}", t.id))
        }
        EventKind::TaskFailure { task, attempt } => (
            format!("failure {}", esc(&task.name)),
            format!("{{\"task_id\":{},\"attempt\":{attempt}}}", task.id),
        ),
        EventKind::NodeFailure => ("node failure".into(), "{}".into()),
        EventKind::UserFlag { event_type, value } => {
            (format!("flag {event_type}"), format!("{{\"value\":{value}}}"))
        }
    }
}

/// Render records as a Chrome trace JSON document.
///
/// Records should come from [`crate::TraceCollector::snapshot`]; order does
/// not matter to the viewers, but metadata events naming every process and
/// thread are emitted first so rows are labelled before slices arrive.
pub fn export(app_name: &str, records: &[Record]) -> String {
    export_named(app_name, records, &[])
}

/// Like [`export`], with display names for the node lanes: node `i` is
/// labelled `node_names[i]` (e.g. a distributed worker's `name@addr`)
/// instead of the generic `node{i}`. Nodes past the end of the slice keep
/// the generic label.
pub fn export_named(app_name: &str, records: &[Record], node_names: &[String]) -> String {
    let mut cores: Vec<_> = records.iter().map(|r| r.core()).collect();
    cores.sort_unstable();
    cores.dedup();

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, event: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&event);
    };

    let mut named_nodes: Vec<u32> = Vec::new();
    for c in &cores {
        if !named_nodes.contains(&c.node) {
            named_nodes.push(c.node);
            let lane = node_names
                .get(c.node as usize)
                .map_or_else(|| format!("node{}", c.node), |n| esc(n));
            push(
                &mut out,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                     \"args\":{{\"name\":\"{} {}\"}}}}",
                    c.node,
                    esc(app_name),
                    lane
                ),
            );
        }
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"core{}\"}}}}",
                c.node, c.core, c.core
            ),
        );
    }

    for r in records {
        let core = r.core();
        match r {
            Record::State { start, end, state, .. } => {
                let (name, cat, args) = state_fields(state);
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{start},\
                         \"dur\":{},\"pid\":{},\"tid\":{},\"args\":{args}}}",
                        end - start,
                        core.node,
                        core.core
                    ),
                );
            }
            Record::Event { time, kind, .. } => {
                let (name, args) = event_fields(kind);
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":{time},\
                         \"s\":\"t\",\"pid\":{},\"tid\":{},\"args\":{args}}}",
                        core.node, core.core
                    ),
                );
            }
        }
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Write the export of `records` to `path` (conventionally `<stem>.trace.json`).
pub fn write_file(
    path: &std::path::Path,
    app_name: &str,
    records: &[Record],
) -> std::io::Result<()> {
    std::fs::write(path, export(app_name, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CoreId, TaskRef};
    use runmetrics::json::{self, JsonValue};

    fn sample_records() -> Vec<Record> {
        vec![
            Record::State {
                core: CoreId::new(0, 0),
                start: 0,
                end: 100,
                state: StateKind::Running(TaskRef::new(1, "graph.experiment")),
            },
            Record::State {
                core: CoreId::new(1, 1),
                start: 50,
                end: 70,
                state: StateKind::Transferring { bytes: 4096 },
            },
            Record::Event {
                core: CoreId::new(0, 0),
                time: 100,
                kind: EventKind::TaskEnd(TaskRef::new(1, "graph.experiment")),
            },
            Record::Event {
                core: CoreId::new(1, 0),
                time: 120,
                kind: EventKind::TaskFailure { task: TaskRef::new(2, "bad\"name"), attempt: 3 },
            },
        ]
    }

    /// Minimal trace_event schema check: the document is valid JSON, has a
    /// `traceEvents` array, and every event carries the fields its phase
    /// requires (`X` → ts/dur/pid/tid, `i` → ts/s, `M` → args.name).
    fn validate_schema(doc: &str) -> Result<usize, String> {
        let v = json::parse(doc)?;
        let events = v
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .ok_or("traceEvents array missing")?;
        for (i, ev) in events.iter().enumerate() {
            let field = |k: &str| ev.get(k).ok_or(format!("event {i}: missing {k:?}"));
            let name = field("name")?.as_str().ok_or(format!("event {i}: name not a string"))?;
            if name.is_empty() {
                return Err(format!("event {i}: empty name"));
            }
            let ph = field("ph")?.as_str().ok_or(format!("event {i}: ph not a string"))?;
            match ph {
                "M" => {
                    field("args")?
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or(format!("event {i}: metadata without args.name"))?;
                }
                "X" => {
                    for k in ["ts", "dur", "pid", "tid"] {
                        field(k)?.as_u64().ok_or(format!("event {i}: {k} not a u64"))?;
                    }
                }
                "i" => {
                    field("ts")?.as_u64().ok_or(format!("event {i}: ts not a u64"))?;
                    field("s")?.as_str().ok_or(format!("event {i}: instant without scope"))?;
                }
                other => return Err(format!("event {i}: unexpected phase {other:?}")),
            }
        }
        Ok(events.len())
    }

    #[test]
    fn export_validates_against_minimal_schema() {
        let doc = export("hpo", &sample_records());
        let n = validate_schema(&doc).unwrap();
        // 2 process_name + 3 thread_name metadata events + 4 records
        assert_eq!(n, 9, "event count in:\n{doc}");
    }

    #[test]
    fn export_maps_nodes_to_pids_and_cores_to_tids() {
        let doc = export("hpo", &sample_records());
        let v = json::parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let slice = events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("graph.experiment"))
            .expect("task slice present");
        assert_eq!(slice.get("pid").unwrap().as_u64(), Some(0));
        assert_eq!(slice.get("tid").unwrap().as_u64(), Some(0));
        assert_eq!(slice.get("ts").unwrap().as_u64(), Some(0));
        assert_eq!(slice.get("dur").unwrap().as_u64(), Some(100));
        assert_eq!(slice.get("args").unwrap().get("task_id").unwrap().as_u64(), Some(1));

        let transfer = events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("transfer"))
            .expect("transfer slice present");
        assert_eq!(transfer.get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(transfer.get("tid").unwrap().as_u64(), Some(1));
        assert_eq!(transfer.get("args").unwrap().get("bytes").unwrap().as_u64(), Some(4096));
    }

    #[test]
    fn export_escapes_task_names() {
        let doc = export("hpo", &sample_records());
        let v = json::parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let failure = events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("failure bad\"name"))
            .expect("escaped failure event survives parsing");
        assert_eq!(failure.get("args").unwrap().get("attempt").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let doc = export("empty", &[]);
        assert_eq!(validate_schema(&doc).unwrap(), 0);
    }

    #[test]
    fn export_named_labels_node_lanes_with_worker_names() {
        let names = vec!["w0@127.0.0.1:7077".to_string()];
        let doc = export_named("hpo", &sample_records(), &names);
        validate_schema(&doc).unwrap();
        let v = json::parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let lane_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("process_name"))
            .map(|e| e.get("args").unwrap().get("name").unwrap().as_str().unwrap())
            .collect();
        // Node 0 gets the worker label; node 1 is past the slice → generic.
        assert!(lane_names.contains(&"hpo w0@127.0.0.1:7077"), "{lane_names:?}");
        assert!(lane_names.contains(&"hpo node1"), "{lane_names:?}");
    }

    #[test]
    fn write_file_emits_the_document() {
        let dir = std::env::temp_dir().join(format!("chrome-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.trace.json");
        write_file(&path, "x", &sample_records()).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(validate_schema(&doc).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
