//! Trace record model.
//!
//! A trace is a flat, time-ordered sequence of [`Record`]s. Two families
//! exist, mirroring Paraver's record types:
//!
//! * **state records** — a `(core, [start, end), state)` interval, e.g. "core
//!   3 of node 1 ran task 17 from t=4s to t=33s". These draw the coloured
//!   bars of a Paraver timeline.
//! * **event records** — a point event at `(core, time)`, e.g. the "event
//!   flags" the paper mentions when describing Figure 5 (task-start markers).

use std::fmt;
use std::sync::Arc;

/// A physical core identified by `(node, core-within-node)`.
///
/// Paraver rows are exactly these pairs; the Y axis of Figures 4–6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId {
    /// Node index within the cluster (0-based).
    pub node: u32,
    /// Core index within the node (0-based).
    pub core: u32,
}

impl CoreId {
    /// Construct a core id.
    pub fn new(node: u32, core: u32) -> Self {
        CoreId { node, core }
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}c{}", self.node, self.core)
    }
}

/// A lightweight reference to a task: its runtime id plus the registered
/// task-function name (e.g. `"graph.experiment"` in the paper's Figure 3).
///
/// The name is an interned `Arc<str>`: one task function generates thousands
/// of records, and a runtime dispatch emits several `TaskRef`s per task, so
/// cloning must be a refcount bump rather than a heap copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TaskRef {
    /// Unique task instance id assigned at submission.
    pub id: u64,
    /// Name of the task function this instance executes.
    pub name: Arc<str>,
}

impl TaskRef {
    /// Construct a task reference. Pass an existing `Arc<str>` (e.g. the
    /// registered task definition's name) to share the allocation.
    pub fn new(id: u64, name: impl Into<Arc<str>>) -> Self {
        TaskRef { id, name: name.into() }
    }
}

/// What a core was doing during a state interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateKind {
    /// Core executed a task (the coloured bars of the paper's traces).
    Running(TaskRef),
    /// Core was reserved by the runtime worker process itself. The paper
    /// notes the COMPSs worker takes half of the cores on the single-node
    /// experiment and a full node on the 28-node experiment.
    RuntimeReserved,
    /// Core staged data in (non-PFS deployments copy inputs to the node).
    Transferring {
        /// Bytes moved.
        bytes: u64,
    },
    /// Core was idle.
    Idle,
}

impl StateKind {
    /// Paraver state value used by the `.prv` writer.
    pub fn prv_state(&self) -> u32 {
        match self {
            StateKind::Idle => 0,
            StateKind::Running(_) => 1,
            StateKind::RuntimeReserved => 5,
            StateKind::Transferring { .. } => 12,
        }
    }
}

/// Point events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A task became ready and was dispatched to this core ("event flag").
    TaskDispatch(TaskRef),
    /// A task finished on this core.
    TaskEnd(TaskRef),
    /// A task failed on this core.
    TaskFailure {
        /// The failing task.
        task: TaskRef,
        /// 1-based execution attempt.
        attempt: u32,
    },
    /// A node failure was observed by the runtime.
    NodeFailure,
    /// Free-form user flag (`extrae_event` analogue).
    UserFlag {
        /// Paraver event type id.
        event_type: u32,
        /// Event value.
        value: u64,
    },
}

impl EventKind {
    /// Paraver event type id used by the `.prv` writer.
    pub fn prv_type(&self) -> u32 {
        match self {
            EventKind::TaskDispatch(_) => 8000,
            EventKind::TaskEnd(_) => 8001,
            EventKind::TaskFailure { .. } => 8002,
            EventKind::NodeFailure => 8003,
            EventKind::UserFlag { event_type, .. } => *event_type,
        }
    }

    /// Paraver event value used by the `.prv` writer.
    pub fn prv_value(&self) -> u64 {
        match self {
            EventKind::TaskDispatch(t) | EventKind::TaskEnd(t) => t.id,
            EventKind::TaskFailure { task, .. } => task.id,
            EventKind::NodeFailure => 1,
            EventKind::UserFlag { value, .. } => *value,
        }
    }
}

/// A single trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// State interval: `core` was in `state` during `[start, end)` (µs).
    State {
        /// Core the interval belongs to.
        core: CoreId,
        /// Interval start, inclusive, microseconds.
        start: u64,
        /// Interval end, exclusive, microseconds.
        end: u64,
        /// What the core was doing.
        state: StateKind,
    },
    /// Point event on `core` at `time` (µs).
    Event {
        /// Core the event belongs to.
        core: CoreId,
        /// Event timestamp, microseconds.
        time: u64,
        /// Event payload.
        kind: EventKind,
    },
}

impl Record {
    /// The core this record belongs to.
    pub fn core(&self) -> CoreId {
        match self {
            Record::State { core, .. } | Record::Event { core, .. } => *core,
        }
    }

    /// Timestamp used for chronological ordering (interval start for states).
    pub fn time(&self) -> u64 {
        match self {
            Record::State { start, .. } => *start,
            Record::Event { time, .. } => *time,
        }
    }

    /// End of the record: interval end for states, the timestamp for events.
    pub fn end_time(&self) -> u64 {
        match self {
            Record::State { end, .. } => *end,
            Record::Event { time, .. } => *time,
        }
    }

    /// Whether this is a state record for a running task.
    pub fn running_task(&self) -> Option<&TaskRef> {
        match self {
            Record::State { state: StateKind::Running(t), .. } => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_display_is_compact() {
        assert_eq!(CoreId::new(2, 17).to_string(), "n2c17");
    }

    #[test]
    fn record_accessors() {
        let t = TaskRef::new(7, "graph.experiment");
        let r = Record::State {
            core: CoreId::new(0, 1),
            start: 10,
            end: 40,
            state: StateKind::Running(t.clone()),
        };
        assert_eq!(r.time(), 10);
        assert_eq!(r.end_time(), 40);
        assert_eq!(r.running_task(), Some(&t));
        assert_eq!(r.core(), CoreId::new(0, 1));

        let e = Record::Event {
            core: CoreId::new(1, 0),
            time: 99,
            kind: EventKind::TaskEnd(t.clone()),
        };
        assert_eq!(e.time(), 99);
        assert_eq!(e.end_time(), 99);
        assert!(e.running_task().is_none());
    }

    #[test]
    fn prv_encoding_distinguishes_states_and_events() {
        let t = TaskRef::new(3, "x");
        assert_eq!(StateKind::Idle.prv_state(), 0);
        assert_eq!(StateKind::Running(t.clone()).prv_state(), 1);
        assert_eq!(StateKind::RuntimeReserved.prv_state(), 5);
        assert_eq!(StateKind::Transferring { bytes: 1 }.prv_state(), 12);

        assert_eq!(EventKind::TaskDispatch(t.clone()).prv_type(), 8000);
        assert_eq!(EventKind::TaskEnd(t.clone()).prv_type(), 8001);
        assert_eq!(EventKind::TaskFailure { task: t.clone(), attempt: 2 }.prv_value(), 3);
        assert_eq!(EventKind::UserFlag { event_type: 42, value: 9 }.prv_type(), 42);
        assert_eq!(EventKind::UserFlag { event_type: 42, value: 9 }.prv_value(), 9);
    }
}
