//! Thread-safe trace collection.
//!
//! The runtime holds an `Arc<TraceCollector>` and reports every state change.
//! Mirroring the paper ("both tracing and graph generation create a
//! performance overhead. These two features can easily be turned off by a
//! simple flag"), the collector can be constructed disabled, in which case
//! recording is a single relaxed atomic load.
//!
//! When enabled, records land in one of `SHARDS` cache-line-aligned,
//! independently locked buffers. Each recording thread is pinned to a shard
//! on first use (round-robin), so worker threads reporting task runs do not
//! contend on one global lock — the pre-shard design made every `task_run`
//! serialise the whole pool through a single `Mutex<Vec>`. Snapshots merge
//! and sort the shards, preserving the chronological contract downstream
//! consumers rely on.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::record::{CoreId, EventKind, Record, StateKind, TaskRef};

/// Number of independently locked record buffers.
const SHARDS: usize = 16;

/// One record buffer, padded to its own cache line so shard locks do not
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct Shard {
    records: Mutex<Vec<Record>>,
}

/// Index of the shard this thread writes to: assigned round-robin on first
/// use so a fixed worker pool spreads evenly across shards.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    IDX.with(|cell| {
        let mut idx = cell.get();
        if idx == usize::MAX {
            idx = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            cell.set(idx);
        }
        idx
    })
}

/// Accumulates trace records from any number of threads.
pub struct TraceCollector {
    enabled: AtomicBool,
    shards: [Shard; SHARDS],
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("enabled", &self.is_enabled())
            .field("records", &self.len())
            .finish()
    }
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::enabled()
    }
}

impl TraceCollector {
    fn with_enabled(enabled: bool) -> Self {
        TraceCollector {
            enabled: AtomicBool::new(enabled),
            shards: std::array::from_fn(|_| Shard::default()),
        }
    }

    /// A collector that records everything (tracing flag on).
    pub fn enabled() -> Self {
        Self::with_enabled(true)
    }

    /// A collector that drops everything (tracing flag off).
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// Construct with an explicit flag, matching the paper's launch-time
    /// `--tracing` switch.
    pub fn with_flag(tracing: bool) -> Self {
        Self::with_enabled(tracing)
    }

    /// Whether records are currently kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggle collection at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record an arbitrary record.
    pub fn record(&self, record: Record) {
        if self.is_enabled() {
            self.shards[shard_index()].records.lock().push(record);
        }
    }

    /// Record a state interval `[start, end)` on `core`.
    pub fn state(&self, core: CoreId, start: u64, end: u64, state: StateKind) {
        debug_assert!(start <= end, "state interval must not be inverted");
        self.record(Record::State { core, start, end, state });
    }

    /// Record that `task` ran on `core` during `[start, end)`.
    pub fn task_run(&self, core: CoreId, start: u64, end: u64, task: TaskRef) {
        self.state(core, start, end, StateKind::Running(task));
    }

    /// Record a point event.
    pub fn event(&self, core: CoreId, time: u64, kind: EventKind) {
        self.record(Record::Event { core, time, kind });
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.records.lock().len()).sum()
    }

    /// Whether no records have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take a chronological snapshot of the records collected so far.
    ///
    /// Records are sorted by `(time, core)` so that downstream consumers
    /// (the PRV writer, the Gantt renderer, statistics) can assume order
    /// regardless of which thread reported what first.
    pub fn snapshot(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            out.extend(shard.records.lock().iter().cloned());
        }
        out.sort_by_key(|r| (r.time(), r.core(), r.end_time()));
        out
    }

    /// Drain all records, leaving the collector empty.
    pub fn drain(&self) -> Vec<Record> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.append(&mut shard.records.lock());
        }
        out.sort_by_key(|r| (r.time(), r.core(), r.end_time()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn task(id: u64) -> TaskRef {
        TaskRef::new(id, format!("t{id}"))
    }

    #[test]
    fn disabled_collector_drops_records() {
        let c = TraceCollector::disabled();
        c.task_run(CoreId::new(0, 0), 0, 10, task(1));
        c.event(CoreId::new(0, 0), 5, EventKind::TaskEnd(task(1)));
        assert!(c.is_empty());
        assert!(!c.is_enabled());
    }

    #[test]
    fn flag_constructor_matches_launch_switch() {
        assert!(TraceCollector::with_flag(true).is_enabled());
        assert!(!TraceCollector::with_flag(false).is_enabled());
    }

    #[test]
    fn snapshot_is_chronological() {
        let c = TraceCollector::enabled();
        c.task_run(CoreId::new(0, 1), 50, 80, task(2));
        c.task_run(CoreId::new(0, 0), 0, 40, task(1));
        c.event(CoreId::new(0, 0), 20, EventKind::TaskDispatch(task(9)));
        let snap = c.snapshot();
        let times: Vec<u64> = snap.iter().map(|r| r.time()).collect();
        assert_eq!(times, vec![0, 20, 50]);
        assert_eq!(c.len(), 3, "snapshot must not consume");
    }

    #[test]
    fn drain_empties_collector() {
        let c = TraceCollector::enabled();
        c.task_run(CoreId::new(0, 0), 0, 1, task(1));
        assert_eq!(c.drain().len(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn toggling_enables_and_disables_recording() {
        let c = TraceCollector::disabled();
        c.set_enabled(true);
        c.task_run(CoreId::new(0, 0), 0, 1, task(1));
        c.set_enabled(false);
        c.task_run(CoreId::new(0, 0), 1, 2, task(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let c = Arc::new(TraceCollector::enabled());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    c.task_run(CoreId::new(t as u32, 0), i, i + 1, TaskRef::new(t * 100 + i, "x"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.len(), 800);
    }

    #[test]
    fn sharded_records_still_snapshot_in_order() {
        // Many threads, interleaved timestamps: the merged snapshot must be
        // globally sorted even though shards fill independently.
        let c = Arc::new(TraceCollector::enabled());
        let mut handles = Vec::new();
        for t in 0..6u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let time = i * 6 + t; // interleave across threads
                    c.task_run(CoreId::new(0, t as u32), time, time + 1, task(t * 50 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = c.snapshot();
        assert_eq!(snap.len(), 300);
        assert!(snap.windows(2).all(|w| w[0].time() <= w[1].time()), "sorted by time");
        let drained = c.drain();
        assert_eq!(drained.len(), 300);
        assert!(c.is_empty());
    }
}
