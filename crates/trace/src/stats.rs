//! Quantitative trace analysis.
//!
//! Paraver's value is the quantitative analysis it allows ("a powerful tool
//! that provides detailed quantitative analysis of program performance");
//! this module computes the numbers the paper reads off the timelines:
//! makespan, per-core busy time, how many tasks started immediately versus
//! waited for a freed resource, and the parallelism profile over time.

use std::collections::BTreeMap;

use crate::record::{CoreId, EventKind, Record, StateKind};

/// Aggregated statistics over a trace snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Latest interval/event end in the trace (µs).
    pub makespan: u64,
    /// Number of distinct task instances that ran.
    pub tasks_run: usize,
    /// Number of task dispatch events observed.
    pub dispatches: usize,
    /// Number of task failure events observed.
    pub failures: usize,
    /// Busy (Running) time per core (µs).
    pub busy_per_core: BTreeMap<CoreId, u64>,
    /// Total Running time across all cores (µs).
    pub total_busy: u64,
    /// Peak number of simultaneously running *task instances* (a task
    /// spanning many cores counts once).
    pub peak_parallelism: usize,
    /// Peak number of simultaneously busy cores.
    pub peak_busy_cores: usize,
}

impl TraceStats {
    /// Compute statistics from a record snapshot.
    pub fn compute(records: &[Record]) -> Self {
        let mut makespan = 0u64;
        let mut busy_per_core: BTreeMap<CoreId, u64> = BTreeMap::new();
        let mut task_ids = std::collections::BTreeSet::new();
        let mut dispatches = 0usize;
        let mut failures = 0usize;
        let mut core_deltas: Vec<(u64, i64)> = Vec::new();
        // A task on N cores emits N identical intervals; count the task once.
        let mut task_intervals = std::collections::BTreeSet::new();

        for r in records {
            makespan = makespan.max(r.end_time());
            match r {
                Record::State { core, start, end, state: StateKind::Running(t) } => {
                    *busy_per_core.entry(*core).or_insert(0) += end - start;
                    task_ids.insert(t.id);
                    core_deltas.push((*start, 1));
                    core_deltas.push((*end, -1));
                    task_intervals.insert((t.id, *start, *end));
                }
                Record::Event { kind: EventKind::TaskDispatch(_), .. } => dispatches += 1,
                Record::Event { kind: EventKind::TaskFailure { .. }, .. } => failures += 1,
                _ => {}
            }
        }

        // Parallelism profiles: sweep start/end deltas. Ends sort before
        // starts at equal times so back-to-back intervals don't double-count.
        let sweep = |mut deltas: Vec<(u64, i64)>| -> usize {
            deltas.sort_by_key(|&(t, d)| (t, d));
            let mut cur = 0i64;
            let mut peak = 0i64;
            for (_, d) in deltas {
                cur += d;
                peak = peak.max(cur);
            }
            peak as usize
        };
        let task_deltas: Vec<(u64, i64)> =
            task_intervals.iter().flat_map(|&(_, s, e)| [(s, 1i64), (e, -1i64)]).collect();

        let total_busy = busy_per_core.values().sum();
        TraceStats {
            makespan,
            tasks_run: task_ids.len(),
            dispatches,
            failures,
            busy_per_core,
            total_busy,
            peak_parallelism: sweep(task_deltas),
            peak_busy_cores: sweep(core_deltas),
        }
    }

    /// Fraction of core-time spent running tasks, over `cores` cores.
    ///
    /// This is the "better utilisation of resources" metric the paper uses to
    /// argue the 14-node run beats the 28-node run.
    pub fn utilisation(&self, cores: usize) -> f64 {
        if self.makespan == 0 || cores == 0 {
            return 0.0;
        }
        self.total_busy as f64 / (self.makespan as f64 * cores as f64)
    }

    /// Number of distinct cores that ever ran a task.
    pub fn cores_used(&self) -> usize {
        self.busy_per_core.len()
    }

    /// Number of tasks whose first Running interval starts within
    /// `window_us` of the trace start — "24 tasks were started at the same
    /// time" in Figure 5's analysis.
    pub fn tasks_started_within(records: &[Record], window_us: u64) -> usize {
        let mut firsts: BTreeMap<u64, u64> = BTreeMap::new();
        for r in records {
            if let Record::State { start, state: StateKind::Running(t), .. } = r {
                let e = firsts.entry(t.id).or_insert(u64::MAX);
                *e = (*e).min(*start);
            }
        }
        firsts.values().filter(|&&t| t <= window_us).count()
    }

    /// Parallelism profile sampled at `samples` evenly spaced instants.
    pub fn parallelism_profile(records: &[Record], samples: usize) -> Vec<usize> {
        let horizon = records.iter().map(|r| r.end_time()).max().unwrap_or(0);
        if horizon == 0 || samples == 0 {
            return vec![0; samples];
        }
        let mut out = Vec::with_capacity(samples);
        for i in 0..samples {
            let t = (horizon as u128 * i as u128 / samples as u128) as u64;
            let n = records
                .iter()
                .filter(|r| {
                    matches!(r, Record::State { start, end, state: StateKind::Running(_), .. }
                        if *start <= t && t < *end)
                })
                .count();
            out.push(n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TaskRef;

    fn run(core: CoreId, start: u64, end: u64, id: u64) -> Record {
        Record::State { core, start, end, state: StateKind::Running(TaskRef::new(id, "t")) }
    }

    #[test]
    fn stats_on_simple_trace() {
        let records = vec![
            run(CoreId::new(0, 0), 0, 100, 1),
            run(CoreId::new(0, 1), 20, 60, 2),
            Record::Event {
                core: CoreId::new(0, 0),
                time: 0,
                kind: EventKind::TaskDispatch(TaskRef::new(1, "t")),
            },
        ];
        let s = TraceStats::compute(&records);
        assert_eq!(s.makespan, 100);
        assert_eq!(s.tasks_run, 2);
        assert_eq!(s.dispatches, 1);
        assert_eq!(s.failures, 0);
        assert_eq!(s.total_busy, 140);
        assert_eq!(s.peak_parallelism, 2);
        assert_eq!(s.peak_busy_cores, 2);
        assert_eq!(s.cores_used(), 2);
        assert!((s.utilisation(2) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn back_to_back_tasks_do_not_inflate_peak() {
        let records = vec![run(CoreId::new(0, 0), 0, 50, 1), run(CoreId::new(0, 0), 50, 100, 2)];
        let s = TraceStats::compute(&records);
        assert_eq!(s.peak_parallelism, 1);
        assert_eq!(s.peak_busy_cores, 1);
    }

    #[test]
    fn multicore_task_counts_once_for_parallelism() {
        // one task spanning 4 cores, concurrently with a 1-core task
        let records = vec![
            run(CoreId::new(0, 0), 0, 100, 1),
            run(CoreId::new(0, 1), 0, 100, 1),
            run(CoreId::new(0, 2), 0, 100, 1),
            run(CoreId::new(0, 3), 0, 100, 1),
            run(CoreId::new(0, 4), 10, 60, 2),
        ];
        let s = TraceStats::compute(&records);
        assert_eq!(s.peak_parallelism, 2, "two task instances");
        assert_eq!(s.peak_busy_cores, 5, "five busy cores");
        assert_eq!(s.tasks_run, 2);
    }

    #[test]
    fn tasks_started_within_window_counts_first_interval_only() {
        let records = vec![
            run(CoreId::new(0, 0), 0, 10, 1),
            run(CoreId::new(0, 1), 5, 15, 2),
            run(CoreId::new(0, 2), 500, 600, 3),
            // task 1 retried later must not count twice
            run(CoreId::new(0, 3), 700, 710, 1),
        ];
        assert_eq!(TraceStats::tasks_started_within(&records, 10), 2);
        assert_eq!(TraceStats::tasks_started_within(&records, 1000), 3);
    }

    #[test]
    fn parallelism_profile_shape() {
        let records = vec![run(CoreId::new(0, 0), 0, 100, 1), run(CoreId::new(0, 1), 0, 50, 2)];
        let p = TraceStats::parallelism_profile(&records, 4);
        assert_eq!(p, vec![2, 2, 1, 1]);
    }

    #[test]
    fn utilisation_handles_degenerate_inputs() {
        let s = TraceStats::compute(&[]);
        assert_eq!(s.utilisation(10), 0.0);
        assert_eq!(s.utilisation(0), 0.0);
        assert_eq!(s.makespan, 0);
    }

    #[test]
    fn failures_counted() {
        let records = vec![Record::Event {
            core: CoreId::new(0, 0),
            time: 5,
            kind: EventKind::TaskFailure { task: TaskRef::new(1, "t"), attempt: 1 },
        }];
        assert_eq!(TraceStats::compute(&records).failures, 1);
    }
}
