//! ASCII Gantt rendering of traces.
//!
//! Paraver draws one horizontal bar per `(node, core)` row; this module does
//! the same with characters so the paper's Figures 4–6 can be eyeballed in a
//! terminal and asserted on in tests. Each task is assigned a stable glyph
//! (cycling over an alphabet), runtime-reserved cores render as `#`,
//! transfers as `~`, idle as `.`.

use std::collections::BTreeMap;

use crate::record::{CoreId, Record, StateKind};

/// Rendering options.
#[derive(Debug, Clone)]
pub struct GanttOptions {
    /// Number of character columns the time axis is divided into.
    pub width: usize,
    /// Only render rows for these nodes (empty = all nodes).
    pub nodes: Vec<u32>,
    /// Collapse nodes: one row per node showing the number of busy cores
    /// (0-9, `+` for ≥10) instead of one row per core. Useful for the
    /// 28-node view of Figure 6.
    pub per_node: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions { width: 80, nodes: Vec::new(), per_node: false }
    }
}

fn glyph_for_task(task_id: u64) -> char {
    const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    ALPHABET[(task_id as usize) % ALPHABET.len()] as char
}

/// Render a chronological record snapshot as an ASCII Gantt chart.
///
/// Returns a multi-line string, one row per core (or per node with
/// [`GanttOptions::per_node`]), ordered by `(node, core)`, each prefixed with
/// its row label. The last line is the time axis.
pub fn render(records: &[Record], opts: &GanttOptions) -> String {
    let horizon = records.iter().map(|r| r.end_time()).max().unwrap_or(0).max(1);
    let width = opts.width.max(10);
    let col_of = |t: u64| -> usize { ((t as u128 * width as u128) / horizon as u128) as usize };

    // Collect per-core cells.
    let mut rows: BTreeMap<CoreId, Vec<char>> = BTreeMap::new();
    for r in records {
        let core = r.core();
        if !opts.nodes.is_empty() && !opts.nodes.contains(&core.node) {
            continue;
        }
        if let Record::State { start, end, state, .. } = r {
            let row = rows.entry(core).or_insert_with(|| vec!['.'; width]);
            let c0 = col_of(*start).min(width - 1);
            // Ensure at least one visible cell even for very short intervals.
            let c1 = col_of(*end).max(c0 + 1).min(width);
            let glyph = match state {
                StateKind::Running(t) => glyph_for_task(t.id),
                StateKind::RuntimeReserved => '#',
                StateKind::Transferring { .. } => '~',
                StateKind::Idle => '.',
            };
            for cell in &mut row[c0..c1] {
                *cell = glyph;
            }
        } else {
            // Make sure event-only cores still get a row.
            rows.entry(core).or_insert_with(|| vec!['.'; width]);
        }
    }

    let mut out = String::new();
    if opts.per_node {
        // Busy-core counts per node per column.
        let mut nodes: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (core, cells) in &rows {
            let counts = nodes.entry(core.node).or_insert_with(|| vec![0; width]);
            for (i, &ch) in cells.iter().enumerate() {
                if ch != '.' {
                    counts[i] += 1;
                }
            }
        }
        for (node, counts) in nodes {
            out.push_str(&format!("{:>8} |", format!("node{node}")));
            for c in counts {
                out.push(match c {
                    0 => '.',
                    1..=9 => char::from_digit(c, 10).unwrap(),
                    _ => '+',
                });
            }
            out.push_str("|\n");
        }
    } else {
        for (core, cells) in &rows {
            out.push_str(&format!("{:>8} |", core.to_string()));
            out.extend(cells.iter());
            out.push_str("|\n");
        }
    }

    // Time axis.
    out.push_str(&format!("{:>8} |{}|", "t", axis(horizon, width)));
    out.push('\n');
    out
}

fn axis(horizon: u64, width: usize) -> String {
    let mut line = vec![' '; width];
    let label = crate::fmt_duration(horizon);
    let start = width.saturating_sub(label.len());
    for (i, ch) in label.chars().enumerate() {
        if start + i < width {
            line[start + i] = ch;
        }
    }
    line[0] = '0';
    line.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TaskRef;

    fn run(core: CoreId, start: u64, end: u64, id: u64) -> Record {
        Record::State { core, start, end, state: StateKind::Running(TaskRef::new(id, "t")) }
    }

    #[test]
    fn single_task_single_core_renders_one_busy_row() {
        // The shape of the paper's Figure 4: one core busy, rest idle.
        let mut records = vec![run(CoreId::new(0, 0), 0, 100, 1)];
        for c in 1..4 {
            records.push(Record::State {
                core: CoreId::new(0, c),
                start: 0,
                end: 100,
                state: StateKind::Idle,
            });
        }
        let s = render(&records, &GanttOptions { width: 20, ..Default::default() });
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "4 cores + axis:\n{s}");
        assert!(lines[0].contains("BBBBBBBBBBBBBBBBBBBB"), "core 0 fully busy:\n{s}");
        assert!(lines[1].contains("...................."), "core 1 idle:\n{s}");
    }

    #[test]
    fn short_interval_still_visible() {
        let records =
            vec![run(CoreId::new(0, 0), 0, 1, 1), run(CoreId::new(0, 1), 0, 1_000_000, 2)];
        let s = render(&records, &GanttOptions { width: 40, ..Default::default() });
        assert!(s.contains('B'), "1µs task must occupy ≥1 cell:\n{s}");
    }

    #[test]
    fn node_filter_hides_other_nodes() {
        let records = vec![run(CoreId::new(0, 0), 0, 10, 1), run(CoreId::new(1, 0), 0, 10, 2)];
        let s = render(&records, &GanttOptions { width: 10, nodes: vec![1], ..Default::default() });
        assert!(!s.contains("n0c0"), "{s}");
        assert!(s.contains("n1c0"), "{s}");
    }

    #[test]
    fn per_node_mode_counts_busy_cores() {
        let records = vec![
            run(CoreId::new(0, 0), 0, 100, 1),
            run(CoreId::new(0, 1), 0, 100, 2),
            run(CoreId::new(0, 2), 0, 50, 3),
        ];
        let s = render(&records, &GanttOptions { width: 10, per_node: true, ..Default::default() });
        let row = s.lines().next().unwrap();
        assert!(row.starts_with("   node0"), "{s}");
        assert!(row.contains('3'), "first half has 3 busy cores:\n{s}");
        assert!(row.contains('2'), "second half has 2 busy cores:\n{s}");
    }

    #[test]
    fn runtime_reserved_and_transfer_glyphs() {
        let records = vec![
            Record::State {
                core: CoreId::new(0, 0),
                start: 0,
                end: 100,
                state: StateKind::RuntimeReserved,
            },
            Record::State {
                core: CoreId::new(0, 1),
                start: 0,
                end: 100,
                state: StateKind::Transferring { bytes: 10 },
            },
        ];
        let s = render(&records, &GanttOptions { width: 10, ..Default::default() });
        assert!(s.contains('#'));
        assert!(s.contains('~'));
    }

    #[test]
    fn axis_labels_horizon() {
        let records = vec![run(CoreId::new(0, 0), 0, 2 * crate::MINUTE, 1)];
        let s = render(&records, &GanttOptions::default());
        assert!(s.contains("2.0m"), "{s}");
        assert!(s.lines().last().unwrap().contains('0'));
    }

    #[test]
    fn empty_trace_renders_axis_only() {
        let s = render(&[], &GanttOptions::default());
        assert_eq!(s.lines().count(), 1);
    }
}
