//! Paraver trace export.
//!
//! Paraver consumes a trio of files: the trace body (`.prv`), the resource
//! naming file (`.row`) and the semantic configuration (`.pcf`). This module
//! writes all three from a record snapshot, following the subset of the
//! Paraver trace format the BSC tools document:
//!
//! ```text
//! header : #Paraver (dd/mm/yy at hh:mm):ftime:nNodes(c1,c2,...):nAppl:applList
//! state  : 1:cpu:appl:task:thread:begin:end:state
//! event  : 2:cpu:appl:task:thread:time:type:value
//! ```
//!
//! We map one Paraver "cpu" to one `(node, core)` pair, numbering cpus
//! globally in node-major order, and run everything as application 1, task 1,
//! one thread per cpu — the layout Extrae uses for runtime-level traces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::record::{CoreId, Record};

/// Maps `(node, core)` pairs to global 1-based Paraver cpu ids.
#[derive(Debug, Clone, Default)]
pub struct CpuIndex {
    cores_per_node: BTreeMap<u32, u32>,
}

impl CpuIndex {
    /// Build the index from every core mentioned in `records`.
    pub fn from_records(records: &[Record]) -> Self {
        let mut cores_per_node: BTreeMap<u32, u32> = BTreeMap::new();
        for r in records {
            let c = r.core();
            let entry = cores_per_node.entry(c.node).or_insert(0);
            *entry = (*entry).max(c.core + 1);
        }
        CpuIndex { cores_per_node }
    }

    /// Total number of cpus in the trace.
    pub fn total_cpus(&self) -> u32 {
        self.cores_per_node.values().sum()
    }

    /// Number of nodes in the trace.
    pub fn nodes(&self) -> usize {
        self.cores_per_node.len()
    }

    /// The global 1-based cpu id for `core`, if the node is known.
    pub fn cpu_id(&self, core: CoreId) -> Option<u32> {
        let mut base = 0u32;
        for (&node, &n) in &self.cores_per_node {
            if node == core.node {
                return (core.core < n).then_some(base + core.core + 1);
            }
            base += n;
        }
        None
    }

    /// Iterate `(node, cores)` pairs in node order.
    pub fn per_node(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.cores_per_node.iter().map(|(&n, &c)| (n, c))
    }
}

/// Complete Paraver export: the three file bodies.
#[derive(Debug, Clone)]
pub struct PrvTrace {
    /// `.prv` file contents.
    pub prv: String,
    /// `.row` file contents (row labels).
    pub row: String,
    /// `.pcf` file contents (semantic configuration).
    pub pcf: String,
}

/// Render a snapshot of records into Paraver's three files.
///
/// `app_name` only affects comments/labels. Records should come from
/// [`crate::TraceCollector::snapshot`] and therefore be time-sorted; the
/// writer re-sorts defensively because the format requires it.
pub fn export(app_name: &str, records: &[Record]) -> PrvTrace {
    let mut records: Vec<Record> = records.to_vec();
    records.sort_by_key(|r| (r.time(), r.core(), r.end_time()));

    let index = CpuIndex::from_records(&records);
    let ftime = records.iter().map(|r| r.end_time()).max().unwrap_or(0);

    // Header: #Paraver (dd/mm/yy at hh:mm):ftime:nNodes(cores,...):nAppl:applList
    let cores_list: Vec<String> = index.per_node().map(|(_, c)| c.to_string()).collect();
    let mut prv = String::new();
    let _ = writeln!(
        prv,
        "#Paraver (01/01/26 at 00:00):{}_ns:{}({}):1:{}(1:{})",
        ftime * 1000, // Paraver wants ns; our records are µs
        index.nodes(),
        cores_list.join(","),
        index.total_cpus(),
        index.total_cpus(),
    );
    let _ = writeln!(prv, "c:{app_name}");

    for r in &records {
        let cpu = match index.cpu_id(r.core()) {
            Some(c) => c,
            None => continue,
        };
        match r {
            Record::State { start, end, state, .. } => {
                let _ = writeln!(
                    prv,
                    "1:{cpu}:1:1:{cpu}:{}:{}:{}",
                    start * 1000,
                    end * 1000,
                    state.prv_state()
                );
            }
            Record::Event { time, kind, .. } => {
                let _ = writeln!(
                    prv,
                    "2:{cpu}:1:1:{cpu}:{}:{}:{}",
                    time * 1000,
                    kind.prv_type(),
                    kind.prv_value()
                );
            }
        }
    }

    // .row — row labels per hierarchy level.
    let mut row = String::new();
    let _ = writeln!(row, "LEVEL CPU SIZE {}", index.total_cpus());
    for (node, cores) in index.per_node() {
        for core in 0..cores {
            let _ = writeln!(row, "node{node}.core{core}");
        }
    }
    let _ = writeln!(row);
    let _ = writeln!(row, "LEVEL NODE SIZE {}", index.nodes());
    for (node, _) in index.per_node() {
        let _ = writeln!(row, "node{node}");
    }

    // .pcf — state and event semantics, matching record.rs encodings.
    let mut pcf = String::new();
    let _ = writeln!(
        pcf,
        "DEFAULT_OPTIONS\n\nLEVEL               THREAD\nUNITS               NANOSEC\n"
    );
    let _ = writeln!(pcf, "STATES");
    let _ = writeln!(pcf, "0    Idle");
    let _ = writeln!(pcf, "1    Running");
    let _ = writeln!(pcf, "5    Runtime reserved");
    let _ = writeln!(pcf, "12   Data transfer");
    let _ = writeln!(pcf);
    let _ = writeln!(pcf, "EVENT_TYPE");
    let _ = writeln!(pcf, "9    8000    Task dispatch (task id)");
    let _ = writeln!(pcf, "9    8001    Task end (task id)");
    let _ = writeln!(pcf, "9    8002    Task failure (task id)");
    let _ = writeln!(pcf, "9    8003    Node failure");

    PrvTrace { prv, row, pcf }
}

/// Write the three files next to each other as `<stem>.prv/.row/.pcf`.
pub fn write_files(stem: &std::path::Path, trace: &PrvTrace) -> std::io::Result<()> {
    std::fs::write(stem.with_extension("prv"), &trace.prv)?;
    std::fs::write(stem.with_extension("row"), &trace.row)?;
    std::fs::write(stem.with_extension("pcf"), &trace.pcf)?;
    Ok(())
}

/// Parse error for [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrvParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for PrvParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "prv parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PrvParseError {}

/// Parse a `.prv` body (as produced by [`export`]) back into records.
///
/// The `.row` content recovers the cpu → `(node, core)` mapping. Task
/// *names* are not stored in the format, so reconstructed
/// [`crate::record::StateKind::Running`] entries carry empty names; everything else —
/// cores, intervals, state codes, event types/values — round-trips.
pub fn parse(prv: &str, row: &str) -> Result<Vec<Record>, PrvParseError> {
    use crate::record::{EventKind, StateKind, TaskRef};

    // cpu id (1-based) → CoreId, from "nodeN.coreM" lines of the .row file.
    let mut cpu_map: Vec<CoreId> = Vec::new();
    for line in row.lines().skip(1) {
        let line = line.trim();
        if line.is_empty() || line.starts_with("LEVEL") {
            break; // end of the CPU level
        }
        let parsed = line
            .strip_prefix("node")
            .and_then(|rest| rest.split_once(".core"))
            .and_then(|(n, c)| Some(CoreId::new(n.parse().ok()?, c.parse().ok()?)));
        match parsed {
            Some(id) => cpu_map.push(id),
            None => {
                return Err(PrvParseError { line: 0, message: format!("bad row label '{line}'") })
            }
        }
    }
    let core_of = |cpu: usize, line_no: usize| -> Result<CoreId, PrvParseError> {
        cpu_map
            .get(cpu.wrapping_sub(1))
            .copied()
            .ok_or(PrvParseError { line: line_no, message: format!("cpu {cpu} not in .row") })
    };

    let mut out = Vec::new();
    for (i, line) in prv.lines().enumerate() {
        let line_no = i + 1;
        if line.starts_with('#') || line.starts_with("c:") || line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(':').collect();
        let num = |s: &str| -> Result<u64, PrvParseError> {
            s.parse()
                .map_err(|_| PrvParseError { line: line_no, message: format!("bad number '{s}'") })
        };
        match fields.first().copied() {
            Some("1") if fields.len() == 8 => {
                let core = core_of(num(fields[1])? as usize, line_no)?;
                let (start, end, state) =
                    (num(fields[5])? / 1000, num(fields[6])? / 1000, num(fields[7])?);
                let state = match state {
                    0 => StateKind::Idle,
                    1 => StateKind::Running(TaskRef::new(0, "")),
                    5 => StateKind::RuntimeReserved,
                    12 => StateKind::Transferring { bytes: 0 },
                    other => {
                        return Err(PrvParseError {
                            line: line_no,
                            message: format!("unknown state {other}"),
                        })
                    }
                };
                out.push(Record::State { core, start, end, state });
            }
            Some("2") if fields.len() == 8 => {
                let core = core_of(num(fields[1])? as usize, line_no)?;
                let time = num(fields[5])? / 1000;
                let (etype, value) = (num(fields[6])? as u32, num(fields[7])?);
                let kind = match etype {
                    8000 => EventKind::TaskDispatch(TaskRef::new(value, "")),
                    8001 => EventKind::TaskEnd(TaskRef::new(value, "")),
                    8002 => EventKind::TaskFailure { task: TaskRef::new(value, ""), attempt: 0 },
                    8003 => EventKind::NodeFailure,
                    other => EventKind::UserFlag { event_type: other, value },
                };
                out.push(Record::Event { core, time, kind });
            }
            _ => {
                return Err(PrvParseError {
                    line: line_no,
                    message: format!("unrecognised record '{line}'"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EventKind, StateKind, TaskRef};

    fn sample_records() -> Vec<Record> {
        vec![
            Record::State {
                core: CoreId::new(0, 0),
                start: 0,
                end: 100,
                state: StateKind::Running(TaskRef::new(1, "graph.experiment")),
            },
            Record::State {
                core: CoreId::new(1, 1),
                start: 50,
                end: 70,
                state: StateKind::Transferring { bytes: 4096 },
            },
            Record::Event {
                core: CoreId::new(0, 0),
                time: 100,
                kind: EventKind::TaskEnd(TaskRef::new(1, "graph.experiment")),
            },
        ]
    }

    #[test]
    fn cpu_index_numbers_cores_node_major() {
        let idx = CpuIndex::from_records(&sample_records());
        assert_eq!(idx.nodes(), 2);
        // node 0 shows only core 0 => 1 core; node 1 shows core 1 => 2 cores.
        assert_eq!(idx.total_cpus(), 3);
        assert_eq!(idx.cpu_id(CoreId::new(0, 0)), Some(1));
        assert_eq!(idx.cpu_id(CoreId::new(1, 0)), Some(2));
        assert_eq!(idx.cpu_id(CoreId::new(1, 1)), Some(3));
        assert_eq!(idx.cpu_id(CoreId::new(2, 0)), None);
        assert_eq!(idx.cpu_id(CoreId::new(0, 5)), None);
    }

    #[test]
    fn export_contains_header_states_and_events() {
        let t = export("hpo_app", &sample_records());
        let first = t.prv.lines().next().unwrap();
        assert!(first.starts_with("#Paraver"), "header line: {first}");
        assert!(first.contains(":2(1,2):"), "node/core list in header: {first}");
        // state record for task 1 on cpu 1, µs→ns scaling applied
        assert!(t.prv.contains("1:1:1:1:1:0:100000:1"), "prv body:\n{}", t.prv);
        // event record
        assert!(t.prv.contains("2:1:1:1:1:100000:8001:1"));
        // transfer state on cpu 3
        assert!(t.prv.contains("1:3:1:1:3:50000:70000:12"));
    }

    #[test]
    fn row_file_lists_every_core_and_node() {
        let t = export("x", &sample_records());
        assert!(t.row.contains("LEVEL CPU SIZE 3"));
        assert!(t.row.contains("node0.core0"));
        assert!(t.row.contains("node1.core1"));
        assert!(t.row.contains("LEVEL NODE SIZE 2"));
    }

    #[test]
    fn pcf_documents_all_states() {
        let t = export("x", &sample_records());
        for needle in ["0    Idle", "1    Running", "5    Runtime reserved", "12   Data transfer"] {
            assert!(t.pcf.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn export_of_empty_trace_is_wellformed() {
        let t = export("empty", &[]);
        assert!(t.prv.starts_with("#Paraver"));
        assert!(t.row.contains("LEVEL CPU SIZE 0"));
    }

    #[test]
    fn parse_roundtrips_structure() {
        let records = sample_records();
        let t = export("x", &records);
        let parsed = parse(&t.prv, &t.row).unwrap();
        assert_eq!(parsed.len(), records.len());
        // intervals, cores and state classes survive (names/bytes don't)
        for (orig, back) in records.iter().zip(&parsed) {
            assert_eq!(orig.core(), back.core());
            assert_eq!(orig.time(), back.time());
            assert_eq!(orig.end_time(), back.end_time());
            match (orig, back) {
                (Record::State { state: s1, .. }, Record::State { state: s2, .. }) => {
                    assert_eq!(s1.prv_state(), s2.prv_state())
                }
                (Record::Event { kind: k1, .. }, Record::Event { kind: k2, .. }) => {
                    assert_eq!(k1.prv_type(), k2.prv_type());
                    assert_eq!(k1.prv_value(), k2.prv_value());
                }
                _ => panic!("record class changed"),
            }
        }
        // aggregate stats agree
        let a = crate::stats::TraceStats::compute(&records);
        let b = crate::stats::TraceStats::compute(&parsed);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_busy, b.total_busy);
        assert_eq!(a.peak_busy_cores, b.peak_busy_cores);
    }

    #[test]
    fn parse_rejects_garbage() {
        let t = export("x", &sample_records());
        assert!(parse("1:1:1:1:1:oops:0:1", &t.row).is_err());
        assert!(parse("3:1:1:1:1:0:0:1", &t.row).is_err(), "unknown record type");
        assert!(parse("1:99:1:1:99:0:1000:1", &t.row).is_err(), "cpu outside .row");
        assert!(parse(&t.prv, "LEVEL CPU SIZE 1\nwat\n").is_err(), "bad row label");
    }

    #[test]
    fn write_files_creates_three_siblings() {
        let dir = std::env::temp_dir().join(format!("paratrace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("trace");
        write_files(&stem, &export("x", &sample_records())).unwrap();
        for ext in ["prv", "row", "pcf"] {
            assert!(stem.with_extension(ext).exists(), "missing .{ext}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
