//! Property tests for the NTP-style clock-offset estimator: under any
//! simulated skew and any asymmetric network delay, the recovered offset is
//! within RTT/2 of the true offset (the classic NTP error bound).

use paratrace::merge::{estimate_offset, ClockSync};
use proptest::prelude::*;

/// Simulate one probe exchange: the driver clock reads `t0` at send, each
/// direction takes `d_fwd`/`d_back` µs, the worker thinks for `think` µs,
/// and the worker clock runs `offset` µs ahead of the driver's.
fn probe(t0: u64, offset: i64, d_fwd: u64, d_back: u64, think: u64) -> (u64, u64, u64, u64) {
    let t1 = ((t0 + d_fwd) as i64 + offset) as u64;
    let t2 = t1 + think;
    let t3 = (t2 as i64 - offset) as u64 + d_back;
    (t0, t1, t2, t3)
}

proptest! {
    /// |estimated − true| ≤ RTT/2 for any skew and any delay asymmetry
    /// (+1 µs slack for integer division).
    #[test]
    fn offset_recovered_within_half_rtt(
        t0 in 1_000_000_000_000u64..2_000_000_000_000,
        offset in -1_000_000_000i64..1_000_000_000,
        d_fwd in 0u64..200_000,
        d_back in 0u64..200_000,
        think in 0u64..20_000,
    ) {
        let (t0, t1, t2, t3) = probe(t0, offset, d_fwd, d_back, think);
        let s = estimate_offset(t0, t1, t2, t3);
        prop_assert_eq!(s.rtt_us, d_fwd + d_back, "RTT excludes remote think time");
        let err = (s.offset_us - offset).abs();
        prop_assert!(
            err <= (s.rtt_us / 2) as i64 + 1,
            "error {} exceeds rtt/2 = {}", err, s.rtt_us / 2
        );
    }

    /// Symmetric delay recovers the offset exactly (±1 for odd RTTs).
    #[test]
    fn symmetric_delay_is_exact(
        t0 in 1_000_000_000_000u64..2_000_000_000_000,
        offset in -1_000_000_000i64..1_000_000_000,
        d in 0u64..200_000,
        think in 0u64..20_000,
    ) {
        let (t0, t1, t2, t3) = probe(t0, offset, d, d, think);
        let s = estimate_offset(t0, t1, t2, t3);
        prop_assert!((s.offset_us - offset).abs() <= 1);
    }

    /// Feeding many noisy probes through [`ClockSync`], the retained best
    /// sample honours the error bound of the *smallest* observed RTT — a
    /// congested probe can never evict a clean one.
    #[test]
    fn clock_sync_error_bounded_by_min_rtt(
        offset in -1_000_000_000i64..1_000_000_000,
        delays in proptest::collection::vec((0u64..500_000, 0u64..500_000, 0u64..5_000), 1..20),
    ) {
        let mut cs = ClockSync::default();
        let mut clock = 1_000_000_000_000u64;
        let mut min_rtt = u64::MAX;
        for &(d_fwd, d_back, think) in &delays {
            let (t0, t1, t2, t3) = probe(clock, offset, d_fwd, d_back, think);
            cs.observe(t0, t1, t2, t3);
            min_rtt = min_rtt.min(d_fwd + d_back);
            clock += 200_000 + d_fwd + d_back + think;
        }
        prop_assert_eq!(cs.rtt_us(), min_rtt);
        prop_assert_eq!(cs.samples(), delays.len() as u64);
        let err = (cs.offset_us() - offset).abs();
        prop_assert!(err <= (min_rtt / 2) as i64 + 1);
    }
}
