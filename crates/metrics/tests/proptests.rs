//! Property tests for the log-linear histogram: quantiles against an exact
//! sorted-vec reference, exact bookkeeping (count/sum/max), and the
//! Prometheus text exposition (label-value escaping, cumulative bucket
//! monotonicity, `+Inf` bucket == count) across random value distributions.

use proptest::prelude::*;
use runmetrics::histogram::{bucket_index, GROUPING};
use runmetrics::{labeled, MetricsRegistry};

/// Exact reference: value at rank `ceil(q·n)` of the sorted sample — the
/// same rank definition the histogram snapshot uses.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The reported quantile is the upper bound of the exact value's bucket:
/// never below the exact quantile, and at most one bucket width
/// (`2^-GROUPING` relative, i.e. ≤ 6.25 %) above it.
fn assert_within_bucket_error(got: u64, exact: u64, q: f64) -> Result<(), TestCaseError> {
    prop_assert!(got >= exact, "q{q}: got {got} < exact {exact}");
    let bound = exact / (1u64 << GROUPING) + 1;
    prop_assert!(got - exact <= bound, "q{q}: got {got}, exact {exact}, bound {bound}");
    Ok(())
}

proptest! {
    #[test]
    fn quantiles_match_sorted_reference(
        mut values in proptest::collection::vec(0u64..=10_000_000, 1..400),
    ) {
        let reg = MetricsRegistry::new(true);
        let h = reg.histogram("p");
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        assert_within_bucket_error(s.p50, exact_quantile(&values, 0.50), 0.50)?;
        assert_within_bucket_error(s.p90, exact_quantile(&values, 0.90), 0.90)?;
        assert_within_bucket_error(s.p99, exact_quantile(&values, 0.99), 0.99)?;
    }

    #[test]
    fn max_count_and_sum_are_exact(
        values in proptest::collection::vec(0u64..=u64::MAX / 1024, 1..200),
    ) {
        let reg = MetricsRegistry::new(true);
        let h = reg.histogram("m");
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.max, *values.iter().max().unwrap());
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
    }

    #[test]
    fn exporters_round_trip_random_snapshots(
        counters in proptest::collection::btree_map("[a-z_]{1,12}", 0u64..1 << 40, 0..6),
        observations in proptest::collection::vec(0u64..1 << 30, 0..50),
    ) {
        let reg = MetricsRegistry::new(true);
        for (name, v) in &counters {
            reg.counter(name).add(*v);
        }
        let h = reg.histogram("h_us");
        for &v in &observations {
            h.record(v);
        }
        let snap = reg.snapshot();
        let (t_us, back) = runmetrics::export::from_jsonl_line(
            &runmetrics::export::to_jsonl_line(99, &snap),
        ).unwrap();
        prop_assert_eq!(t_us, 99);
        prop_assert_eq!(back, snap.clone());

        let series = runmetrics::export::parse_prometheus(
            &runmetrics::export::to_prometheus(&snap),
        ).unwrap();
        for (name, v) in &counters {
            let got = series.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
            prop_assert_eq!(got, Some(*v as f64), "counter {} lost", name);
        }
    }

    /// Any label value — quotes, backslashes, newlines, commas, spaces —
    /// survives a trip through `labeled` → `to_prometheus` → `parse_labels`,
    /// and the resulting exposition still validates.
    #[test]
    fn label_escaping_round_trips_through_exposition(
        value in "[ -~\n\\\\\"]{0,40}",
        count in 0u64..1 << 40,
    ) {
        let reg = MetricsRegistry::new(true);
        reg.counter(&labeled("escape_total", "fn", &value)).add(count);
        let text = runmetrics::to_prometheus(&reg.snapshot());
        runmetrics::validate_exposition(&text).unwrap();
        let series = runmetrics::parse_prometheus(&text).unwrap();
        let (name, got) = series.iter().find(|(n, _)| n.starts_with("escape_total")).unwrap();
        prop_assert_eq!(*got as u64, count);
        let open = name.find('{').unwrap();
        let pairs =
            runmetrics::parse_labels(&name[open + 1..name.len() - 1]).unwrap();
        prop_assert_eq!(pairs, vec![("fn".to_string(), value)]);
    }

    /// The exported histogram has strictly increasing `le` bounds with
    /// monotone cumulative counts, a closing `+Inf` bucket equal to `_count`,
    /// and per-bucket cumulative counts that match an exact recount of the
    /// recorded values. `validate_exposition` checks the first two; the
    /// recount pins the exporter to the actual data.
    #[test]
    fn histogram_buckets_are_cumulative_and_closed(
        observations in proptest::collection::vec(0u64..1 << 30, 0..200),
    ) {
        let reg = MetricsRegistry::new(true);
        let h = reg.histogram("lat_us");
        for &v in &observations {
            h.record(v);
        }
        let snap = reg.snapshot();
        let text = runmetrics::to_prometheus(&snap);
        let samples = runmetrics::validate_exposition(&text).unwrap();
        prop_assert!(samples >= 6, "histogram family emits at least 6 samples");

        let s = snap.histogram("lat_us").unwrap();
        prop_assert_eq!(s.buckets.last().map(|&(_, c)| c).unwrap_or(0), s.count);
        let mut last = 0u64;
        for &(i, cum) in &s.buckets {
            let exact = observations.iter().filter(|&&v| bucket_index(v) <= i as usize).count();
            prop_assert_eq!(cum, exact as u64, "cumulative count at bucket {}", i);
            prop_assert!(cum > last, "cumulative counts strictly increase at occupied buckets");
            last = cum;
        }
    }
}
