//! Property tests for the log-linear histogram: quantiles against an exact
//! sorted-vec reference, and exact bookkeeping (count/sum/max), across
//! random value distributions.

use proptest::prelude::*;
use runmetrics::histogram::GROUPING;
use runmetrics::MetricsRegistry;

/// Exact reference: value at rank `ceil(q·n)` of the sorted sample — the
/// same rank definition the histogram snapshot uses.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The reported quantile is the upper bound of the exact value's bucket:
/// never below the exact quantile, and at most one bucket width
/// (`2^-GROUPING` relative, i.e. ≤ 6.25 %) above it.
fn assert_within_bucket_error(got: u64, exact: u64, q: f64) -> Result<(), TestCaseError> {
    prop_assert!(got >= exact, "q{q}: got {got} < exact {exact}");
    let bound = exact / (1u64 << GROUPING) + 1;
    prop_assert!(got - exact <= bound, "q{q}: got {got}, exact {exact}, bound {bound}");
    Ok(())
}

proptest! {
    #[test]
    fn quantiles_match_sorted_reference(
        mut values in proptest::collection::vec(0u64..=10_000_000, 1..400),
    ) {
        let reg = MetricsRegistry::new(true);
        let h = reg.histogram("p");
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        assert_within_bucket_error(s.p50, exact_quantile(&values, 0.50), 0.50)?;
        assert_within_bucket_error(s.p90, exact_quantile(&values, 0.90), 0.90)?;
        assert_within_bucket_error(s.p99, exact_quantile(&values, 0.99), 0.99)?;
    }

    #[test]
    fn max_count_and_sum_are_exact(
        values in proptest::collection::vec(0u64..=u64::MAX / 1024, 1..200),
    ) {
        let reg = MetricsRegistry::new(true);
        let h = reg.histogram("m");
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.max, *values.iter().max().unwrap());
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
    }

    #[test]
    fn exporters_round_trip_random_snapshots(
        counters in proptest::collection::btree_map("[a-z_]{1,12}", 0u64..1 << 40, 0..6),
        observations in proptest::collection::vec(0u64..1 << 30, 0..50),
    ) {
        let reg = MetricsRegistry::new(true);
        for (name, v) in &counters {
            reg.counter(name).add(*v);
        }
        let h = reg.histogram("h_us");
        for &v in &observations {
            h.record(v);
        }
        let snap = reg.snapshot();
        let (t_us, back) = runmetrics::export::from_jsonl_line(
            &runmetrics::export::to_jsonl_line(99, &snap),
        ).unwrap();
        prop_assert_eq!(t_us, 99);
        prop_assert_eq!(back, snap.clone());

        let series = runmetrics::export::parse_prometheus(
            &runmetrics::export::to_prometheus(&snap),
        ).unwrap();
        for (name, v) in &counters {
            let got = series.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
            prop_assert_eq!(got, Some(*v as f64), "counter {} lost", name);
        }
    }
}
