//! Log-linear bucketed latency histogram.
//!
//! The layout follows the classic HdrHistogram/rpc-perf scheme: values below
//! `2^(G+1)` land in exact unit-width buckets; above that, each power of two
//! is split into `2^G` sub-buckets, so the bucket containing a value is never
//! wider than `2^-G` of the value itself. With `G = 4` that is a ≤ 6.25 %
//! relative error on any reported quantile, 976 buckets, and ~8 KiB per
//! histogram — cheap enough to hold one per task function.
//!
//! Recording is wait-free: one `fetch_add` into the bucket plus count/sum
//! accumulators and a `fetch_max` for the exact maximum, all relaxed. The
//! enabled check lives in the shared `crate::registry::Switch` so a
//! disabled registry pays a single relaxed load per record.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::registry::Switch;

/// Sub-bucket grouping power: `2^GROUPING` sub-buckets per power of two.
pub const GROUPING: u32 = 4;
/// First index of the logarithmic region (values `< LINEAR_MAX` are exact).
const LINEAR_MAX: u64 = 1 << (GROUPING + 1);
/// Total bucket count for full `u64` range coverage: the log region spans
/// bit positions `GROUPING+1 ..= 63`, each contributing `2^GROUPING`
/// sub-buckets, on top of the `2^(GROUPING+1)` exact linear buckets.
pub const NUM_BUCKETS: usize =
    ((64 - GROUPING as usize) << GROUPING as usize) + (1 << GROUPING as usize);

/// Map a value to its bucket index.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        value as usize
    } else {
        let h = 63 - value.leading_zeros(); // position of the highest set bit
        let shift = h - GROUPING;
        (((h - GROUPING + 1) as usize) << GROUPING) + ((value >> shift) as usize - (1 << GROUPING))
    }
}

/// Largest value stored in bucket `index` (the value a quantile reports).
///
/// Inverse of [`bucket_index`]: a log-region index decomposes as
/// `index = ((h - G + 1) << G) + offset`, so the bucket spans
/// `[((2^G + offset) << (h-G)), ((2^G + offset + 1) << (h-G)) - 1]`.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if (index as u64) < LINEAR_MAX {
        index as u64
    } else {
        let offset = (index & ((1 << GROUPING) - 1)) as u64;
        let shift = (index >> GROUPING) as u32 - 1; // == h - GROUPING
        ((1u64 << GROUPING) + offset + 1).checked_shl(shift).map(|v| v - 1).unwrap_or(u64::MAX)
    }
}

/// Shared histogram state.
pub(crate) struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A recording handle. Cloning is cheap; all clones feed the same buckets.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) on: Arc<Switch>,
    pub(crate) core: Arc<HistogramCore>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.core.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    /// Record one observation. A single relaxed load when disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !self.on.is_on() {
            return;
        }
        let c = &self.core;
        c.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(value, Ordering::Relaxed);
        c.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough snapshot of the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.core;
        let buckets: Vec<u64> = c.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        // Derive the count from the bucket sweep so quantile ranks are
        // consistent with the sweep even while writers race us.
        let count: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_upper_bound(i);
                }
            }
            bucket_upper_bound(NUM_BUCKETS - 1)
        };
        // Sparse cumulative form of the same sweep: one entry per occupied
        // bucket, so a typical latency histogram exports a dozen `le` lines
        // instead of 976.
        let mut sparse = Vec::new();
        let mut cum = 0u64;
        for (i, &n) in buckets.iter().enumerate() {
            if n > 0 {
                cum += n;
                sparse.push((i as u32, cum));
            }
        }
        HistogramSnapshot {
            count,
            sum: c.sum.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            buckets: sparse,
        }
    }
}

/// Point-in-time digest of a histogram: the paper-relevant latency numbers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (for means and rates).
    pub sum: u64,
    /// Exact maximum observation.
    pub max: u64,
    /// Median (≤ 6.25 % relative error).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Occupied buckets as `(bucket_index, cumulative_count)` pairs, sorted
    /// by index. Cumulative counts are monotone and the last entry equals
    /// [`count`](Self::count); [`bucket_upper_bound`] turns an index into the
    /// Prometheus `le` bound.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn linear_region_is_exact() {
        for v in 0..LINEAR_MAX {
            let i = bucket_index(v);
            assert_eq!(i as u64, v);
            assert_eq!(bucket_upper_bound(i), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0usize;
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1_000, 1_000_000, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= last, "index must not decrease: v={v} i={i} last={last}");
            assert!(i < NUM_BUCKETS, "v={v} i={i}");
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1, "top value fills the last bucket");
    }

    #[test]
    fn upper_bound_brackets_its_values() {
        for v in [32u64, 47, 48, 100, 999, 4_096, 123_456_789, u64::MAX / 3] {
            let i = bucket_index(v);
            let ub = bucket_upper_bound(i);
            assert!(ub >= v, "upper bound {ub} below value {v}");
            // next bucket starts above this value
            if i + 1 < NUM_BUCKETS {
                assert!(bucket_upper_bound(i + 1) > ub);
            }
            // relative width ≤ 2^-GROUPING
            assert!(
                (ub - v) as f64 <= v as f64 / (1 << GROUPING) as f64,
                "bucket too wide at {v}: ub {ub}"
            );
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let reg = MetricsRegistry::new(true);
        let h = reg.histogram("t");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        let expect = |q: f64| (q * 1000.0).ceil() as u64;
        for (q, got) in [(0.5, s.p50), (0.9, s.p90), (0.99, s.p99)] {
            let want = expect(q);
            let tol = want / (1 << GROUPING) as u64 + 1;
            assert!(got >= want && got <= want + tol, "q{q}: got {got}, want ~{want}");
        }
        assert!((s.mean() - 500.5).abs() < 0.001);
    }

    #[test]
    fn empty_histogram_snapshots_zero() {
        let reg = MetricsRegistry::new(true);
        let s = reg.histogram("e").snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let reg = MetricsRegistry::new(false);
        let h = reg.histogram("off");
        h.record(42);
        assert_eq!(h.count(), 0);
    }

    // The proptest sweep against an exact sorted-vec reference lives in
    // `tests/proptests.rs` (public-API only, so the dev-only proptest
    // dependency stays out of the library's unit tests).
}
