//! Metric registration and snapshotting.
//!
//! A [`MetricsRegistry`] owns the enabled flag (shared by every handle it
//! hands out) and a name → metric map. Registration locks a mutex; holding
//! the returned [`Counter`]/[`Gauge`]/[`Histogram`] handle keeps the hot
//! path lock-free thereafter.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::histogram::{Histogram, HistogramCore, HistogramSnapshot};

/// The shared on/off flag. One relaxed load per recording call when off.
pub(crate) struct Switch(AtomicBool);

impl Switch {
    #[inline]
    pub(crate) fn is_on(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Monotonically increasing event counter.
#[derive(Clone)]
pub struct Counter {
    on: Arc<Switch>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n` to the counter (no-op while the registry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if self.on.is_on() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

/// Last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Clone)]
pub struct Gauge {
    on: Arc<Switch>,
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge (no-op while the registry is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if self.on.is_on() {
            self.cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if `v` is larger (running maximum, e.g.
    /// best-accuracy-so-far). Not atomic across racing writers, which is
    /// fine for the single-writer gauges this repo keeps.
    #[inline]
    pub fn set_max(&self, v: f64) {
        if self.on.is_on() && v > self.value() {
            self.cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.value())
    }
}

#[derive(Default)]
struct Metrics {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistogramCore>>,
}

/// The registry: enabled flag + named metrics.
pub struct MetricsRegistry {
    on: Arc<Switch>,
    metrics: Mutex<Metrics>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").field("enabled", &self.enabled()).finish()
    }
}

impl MetricsRegistry {
    /// Fresh registry; `enabled` mirrors the paper's launch-time flag.
    pub fn new(enabled: bool) -> Self {
        MetricsRegistry {
            on: Arc::new(Switch(AtomicBool::new(enabled))),
            metrics: Mutex::new(Metrics::default()),
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.on.is_on()
    }

    /// Toggle recording at runtime. Already-recorded values are kept.
    pub fn set_enabled(&self, on: bool) {
        self.on.0.store(on, Ordering::Relaxed);
    }

    /// Register (or fetch) a counter. Registration pre-creates the series so
    /// it exports as `0` even before the first event — the acceptance shape
    /// for "retry counter present in every snapshot".
    pub fn counter(&self, name: &str) -> Counter {
        let cell = Arc::clone(self.metrics.lock().counters.entry(name.to_string()).or_default());
        Counter { on: Arc::clone(&self.on), cell }
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let cell = Arc::clone(
            self.metrics
                .lock()
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
        );
        Gauge { on: Arc::clone(&self.on), cell }
    }

    /// Register (or fetch) a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let core = Arc::clone(
            self.metrics
                .lock()
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(HistogramCore::new())),
        );
        Histogram { on: Arc::clone(&self.on), core }
    }

    /// One-shot histogram observation by name. Convenience for cold paths;
    /// hot paths should hold a [`Histogram`] handle instead. The disabled
    /// path is still the single relaxed check, before any locking.
    pub fn observe(&self, name: &str, value: u64) {
        if !self.on.is_on() {
            return;
        }
        self.histogram(name).record(value);
    }

    /// Snapshot every registered metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock();
        MetricsSnapshot {
            counters: m
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: m
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: m
                .histograms
                .iter()
                .map(|(k, v)| {
                    let h = Histogram { on: Arc::clone(&self.on), core: Arc::clone(v) };
                    (k.clone(), h.snapshot())
                })
                .collect(),
        }
    }
}

/// Point-in-time copy of a registry: what the exporters consume.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counter pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauge pairs, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, digest)` histogram pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Value of a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Digest of a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Fold `other`'s series into this snapshot, keeping name order — used
    /// to export one combined view of several registries (e.g. a runtime's
    /// registry plus the process-global one). Callers are expected to keep
    /// series names disjoint across registries; on a name collision both
    /// entries are kept and exporters emit both.
    pub fn merge(&mut self, other: MetricsSnapshot) {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_combines_and_sorts_series() {
        let a = MetricsRegistry::new(true);
        a.counter("b_total").incr();
        a.gauge("z_depth").set(1.0);
        let b = MetricsRegistry::new(true);
        b.counter("a_total").add(2);
        b.histogram("lat_us").record(5);
        let mut snap = a.snapshot();
        snap.merge(b.snapshot());
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a_total", "b_total"], "sorted after merge");
        assert_eq!(snap.counter("a_total"), Some(2));
        assert_eq!(snap.gauge("z_depth"), Some(1.0));
        assert_eq!(snap.histogram("lat_us").unwrap().count, 1);
    }

    #[test]
    fn counters_add_and_survive_relookup() {
        let reg = MetricsRegistry::new(true);
        let c = reg.counter("x_total");
        c.incr();
        c.add(4);
        assert_eq!(reg.counter("x_total").value(), 5, "same series by name");
        assert_eq!(reg.snapshot().counter("x_total"), Some(5));
    }

    #[test]
    fn gauges_set_and_set_max() {
        let reg = MetricsRegistry::new(true);
        let g = reg.gauge("depth");
        g.set(3.0);
        g.set_max(1.0);
        assert_eq!(g.value(), 3.0, "set_max never lowers");
        g.set_max(9.5);
        assert_eq!(reg.snapshot().gauge("depth"), Some(9.5));
        g.set(0.5);
        assert_eq!(g.value(), 0.5, "set always writes");
    }

    #[test]
    fn disabled_registry_is_inert_and_toggleable() {
        let reg = MetricsRegistry::new(false);
        let c = reg.counter("c_total");
        let g = reg.gauge("g");
        let h = reg.histogram("h_us");
        c.incr();
        g.set(1.0);
        h.record(10);
        reg.observe("h_us", 10);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0.0);
        assert_eq!(h.count(), 0);
        reg.set_enabled(true);
        c.incr();
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn registration_pre_creates_zero_series() {
        let reg = MetricsRegistry::new(true);
        let _ = reg.counter("retries_total");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("retries_total"), Some(0), "present at 0 before any event");
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let reg = Arc::new(MetricsRegistry::new(true));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = reg.counter("hot_total");
            let h = reg.histogram("hot_us");
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    c.incr();
                    h.record(i % 512);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("hot_total").value(), 80_000);
        assert_eq!(reg.histogram("hot_us").snapshot().count, 80_000);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = MetricsRegistry::new(true);
        reg.counter("zz");
        reg.counter("aa");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["aa", "zz"]);
    }
}
