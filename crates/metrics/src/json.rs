//! Minimal JSON reader/writer helpers.
//!
//! The exporters hand-roll their JSON output (the workspace deliberately has
//! no serde); this module provides the matching *reader* so tests can prove
//! the output round-trips, and so the Chrome `trace_event` exporter in
//! `paratrace` can be schema-checked without new dependencies. It parses the
//! JSON this workspace emits — objects, arrays, strings, f64 numbers,
//! booleans, null — and is strict about everything it understands.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order preserved, duplicate keys rejected.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `u64` (must be a non-negative integer ≤ 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 9.007_199_254_740_992e15 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Escape a string for embedding in JSON output (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), JsonValue::Number(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), JsonValue::String("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].get("b").unwrap().as_str(),
            Some("x")
        );
        assert_eq!(v.get("c").unwrap(), &JsonValue::Bool(false));
    }

    #[test]
    fn escape_round_trips() {
        let original = "quote \" slash \\ newline \n tab \t control \u{1} done";
        let parsed = parse(&format!("\"{}\"", escape(original))).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in
            ["{", "[1,]", "{\"a\":1,}", "\"open", "01x", "{\"a\":1} extra", "{\"a\":1,\"a\":2}"]
        {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
