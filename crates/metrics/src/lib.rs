//! `runmetrics` — live quantitative telemetry for the whole stack.
//!
//! The paper's §1 "ideal tool" checklist demands *performance insight*; the
//! `paratrace` crate reproduces its post-mortem Extrae/Paraver traces, and
//! this crate adds the live counterpart: counters, gauges and latency
//! histograms that any thread can update with a handful of relaxed atomic
//! operations, snapshotted on demand and exported as Prometheus text or
//! JSON-lines time series.
//!
//! Design rules, in the spirit of the paper's "tracing can be turned off by
//! a simple flag":
//!
//! * **disabled is near-free** — every recording call starts with a single
//!   relaxed atomic load of the registry's enabled flag and returns
//!   immediately when it is off;
//! * **enabled is lock-free** — counters and gauges are one `fetch_add`/
//!   `store`; a histogram record is three `fetch_add`s and a `fetch_max`
//!   into pre-sized log-linear buckets (≤ 2⁻⁴ ≈ 6.25 % relative quantile
//!   error). No allocation, no locks, no syscalls on the hot path;
//! * **registration is the only locked path** — creating or looking up a
//!   metric by name takes a mutex; hold the returned handle and the hot
//!   path never sees it.
//!
//! # Example
//!
//! ```
//! use runmetrics::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new(true);
//! let served = reg.counter("requests_served_total");
//! let latency = reg.histogram("request_latency_us");
//! served.incr();
//! latency.record(1_250);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("requests_served_total"), Some(1));
//! println!("{}", runmetrics::export::to_prometheus(&snap));
//! ```

#![deny(missing_docs)]

pub mod export;
pub mod histogram;
pub mod json;
pub mod registry;

pub use export::{
    escape_label_value, from_jsonl_line, parse_labels, parse_prometheus, to_jsonl_line,
    to_prometheus, validate_exposition,
};
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};

use std::sync::{Arc, OnceLock};

/// The process-wide registry, created on first use and **disabled** by
/// default. Library layers with no runtime handy (e.g. `tinyml`'s training
/// loop) record here; applications that want those series call
/// `runmetrics::global().set_enabled(true)` and export its snapshots.
pub fn global() -> &'static Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new(false)))
}

/// Compose a metric name with one Prometheus-style label, e.g.
/// `labeled("task_latency_us", "fn", "graph.experiment")` →
/// `task_latency_us{fn="graph.experiment"}`. The label value is escaped per
/// the Prometheus text format ([`escape_label_value`]); the exporters keep
/// the label through Prometheus and JSON output and [`parse_labels`] undoes
/// the escaping.
pub fn labeled(base: &str, label: &str, value: &str) -> String {
    format!("{base}{{{label}=\"{}\"}}", escape_label_value(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_starts_disabled() {
        let g = global();
        let c = g.counter("global_test_counter");
        c.incr();
        assert_eq!(c.value(), 0, "disabled registry drops increments");
    }

    #[test]
    fn labeled_builds_prometheus_series_names() {
        assert_eq!(labeled("lat_us", "fn", "exp"), "lat_us{fn=\"exp\"}");
        assert_eq!(labeled("lat_us", "fn", "a\"b\\c\nd"), "lat_us{fn=\"a\\\"b\\\\c\\nd\"}");
    }
}
