//! Snapshot exporters: Prometheus text format and JSON-lines time series.
//!
//! Metric names may carry one embedded Prometheus-style label, e.g.
//! `task_latency_us{fn="graph.experiment"}` (see [`crate::labeled`]). The
//! Prometheus exporter splits that back into base name + label so multiple
//! task functions share one `# TYPE` family; the JSON exporter keeps the
//! full name as the object key.

use crate::histogram::HistogramSnapshot;
use crate::json::{self, JsonValue};
use crate::registry::MetricsSnapshot;

/// Split `base{labels}` into `(base, Some(labels))`, or `(name, None)`.
fn split_name(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(open) if name.ends_with('}') => (&name[..open], Some(&name[open + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Render `base` with optional pre-existing labels plus extra `label="value"`
/// pairs, producing a valid Prometheus series name.
fn series(base: &str, labels: Option<&str>, extra: &[(&str, &str)]) -> String {
    let mut pairs: Vec<String> = Vec::new();
    if let Some(l) = labels {
        pairs.push(l.to_string());
    }
    for (k, v) in extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        base.to_string()
    } else {
        format!("{base}{{{}}}", pairs.join(","))
    }
}

/// Format an `f64` so it survives text round-trips; non-finite values
/// (which no metric in this workspace produces) degrade to `0`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Render a snapshot in the Prometheus text exposition format.
///
/// Counters and gauges become single samples; histograms become
/// summary-style families with `quantile` labels plus `_sum`, `_count`
/// and a `_max` gauge.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_type_line = String::new();
    let mut type_line = |out: &mut String, base: &str, kind: &str| {
        let line = format!("# TYPE {base} {kind}\n");
        if line != last_type_line {
            out.push_str(&line);
            last_type_line = line;
        }
    };

    for (name, value) in &snap.counters {
        let (base, labels) = split_name(name);
        type_line(&mut out, base, "counter");
        out.push_str(&format!("{} {}\n", series(base, labels, &[]), value));
    }
    for (name, value) in &snap.gauges {
        let (base, labels) = split_name(name);
        type_line(&mut out, base, "gauge");
        out.push_str(&format!("{} {}\n", series(base, labels, &[]), fmt_f64(*value)));
    }
    for (name, h) in &snap.histograms {
        let (base, labels) = split_name(name);
        type_line(&mut out, base, "summary");
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            out.push_str(&format!("{} {}\n", series(base, labels, &[("quantile", q)]), v));
        }
        out.push_str(&format!("{} {}\n", series(&format!("{base}_sum"), labels, &[]), h.sum));
        out.push_str(&format!("{} {}\n", series(&format!("{base}_count"), labels, &[]), h.count));
        out.push_str(&format!("{} {}\n", series(&format!("{base}_max"), labels, &[]), h.max));
    }
    out
}

/// Parse Prometheus text back into flat `(series, value)` samples,
/// skipping comments. The inverse of [`to_prometheus`] for round-trip
/// checks and bench assertions.
pub fn parse_prometheus(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let split_at = line.rfind(' ').ok_or_else(|| format!("no value in line {line:?}"))?;
        let (name, value) = line.split_at(split_at);
        let value: f64 = value.trim().parse().map_err(|_| format!("bad value in line {line:?}"))?;
        out.push((name.trim().to_string(), value));
    }
    Ok(out)
}

/// Render a snapshot as one JSON-lines record (no trailing newline):
/// `{"t_us":..., "counters":{...}, "gauges":{...}, "histograms":{...}}`.
/// `t_us` is the caller's timestamp (µs since its chosen epoch).
pub fn to_jsonl_line(t_us: u64, snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"t_us\":{t_us},\"counters\":{{"));
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json::escape(name), value));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json::escape(name), fmt_f64(*value)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            json::escape(name),
            h.count,
            h.sum,
            h.max,
            h.p50,
            h.p90,
            h.p99
        ));
    }
    out.push_str("}}");
    out
}

/// Parse one JSON-lines record back into `(t_us, snapshot)`. The inverse of
/// [`to_jsonl_line`] (exact for values below 2^53, i.e. everything the
/// instrumented stack records).
pub fn from_jsonl_line(line: &str) -> Result<(u64, MetricsSnapshot), String> {
    let v = json::parse(line)?;
    let t_us = v.get("t_us").and_then(JsonValue::as_u64).ok_or("missing t_us")?;
    let obj = |key: &str| -> Result<&[(String, JsonValue)], String> {
        v.get(key).and_then(JsonValue::as_object).ok_or_else(|| format!("missing object {key:?}"))
    };
    let mut snap = MetricsSnapshot::default();
    for (name, value) in obj("counters")? {
        let value = value.as_u64().ok_or_else(|| format!("bad counter {name:?}"))?;
        snap.counters.push((name.clone(), value));
    }
    for (name, value) in obj("gauges")? {
        let value = value.as_f64().ok_or_else(|| format!("bad gauge {name:?}"))?;
        snap.gauges.push((name.clone(), value));
    }
    for (name, value) in obj("histograms")? {
        let field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("bad histogram field {name:?}.{key}"))
        };
        snap.histograms.push((
            name.clone(),
            HistogramSnapshot {
                count: field("count")?,
                sum: field("sum")?,
                max: field("max")?,
                p50: field("p50")?,
                p90: field("p90")?,
                p99: field("p99")?,
            },
        ));
    }
    Ok((t_us, snap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{labeled, MetricsRegistry};

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new(true);
        reg.counter("tasks_completed_total").add(7);
        reg.counter("tasks_retried_total");
        reg.gauge("ready_queue_depth").set(3.0);
        reg.gauge("best_accuracy").set(0.9625);
        let h = reg.histogram(&labeled("task_latency_us", "fn", "graph.experiment"));
        for v in [100u64, 200, 400, 800] {
            h.record(v);
        }
        reg.histogram("sched_decision_us").record(12);
        reg
    }

    #[test]
    fn prometheus_output_has_expected_shape() {
        let text = to_prometheus(&sample_registry().snapshot());
        for needle in [
            "# TYPE tasks_completed_total counter",
            "tasks_completed_total 7",
            "tasks_retried_total 0",
            "# TYPE ready_queue_depth gauge",
            "best_accuracy 0.9625",
            "# TYPE task_latency_us summary",
            "task_latency_us{fn=\"graph.experiment\",quantile=\"0.5\"}",
            "task_latency_us_sum{fn=\"graph.experiment\"} 1500",
            "task_latency_us_count{fn=\"graph.experiment\"} 4",
            "task_latency_us_max{fn=\"graph.experiment\"} 800",
            "sched_decision_us{quantile=\"0.99\"} 12",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn prometheus_round_trips_every_sample() {
        let snap = sample_registry().snapshot();
        let series = parse_prometheus(&to_prometheus(&snap)).unwrap();
        let lookup = |name: &str| -> f64 {
            series
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("series {name:?} missing"))
                .1
        };
        assert_eq!(lookup("tasks_completed_total") as u64, 7);
        assert_eq!(lookup("tasks_retried_total") as u64, 0);
        assert_eq!(lookup("best_accuracy"), 0.9625);
        let h = snap.histogram(&labeled("task_latency_us", "fn", "graph.experiment")).unwrap();
        assert_eq!(
            lookup("task_latency_us{fn=\"graph.experiment\",quantile=\"0.9\"}") as u64,
            h.p90
        );
        assert_eq!(lookup("task_latency_us_count{fn=\"graph.experiment\"}") as u64, h.count);
        assert_eq!(lookup("task_latency_us_max{fn=\"graph.experiment\"}") as u64, h.max);
    }

    #[test]
    fn type_lines_are_deduplicated_per_family() {
        let reg = MetricsRegistry::new(true);
        reg.histogram(&labeled("lat_us", "fn", "a")).record(1);
        reg.histogram(&labeled("lat_us", "fn", "b")).record(2);
        let text = to_prometheus(&reg.snapshot());
        assert_eq!(
            text.matches("# TYPE lat_us summary").count(),
            1,
            "one TYPE per family:\n{text}"
        );
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let snap = sample_registry().snapshot();
        let line = to_jsonl_line(1_234_567, &snap);
        assert!(!line.contains('\n'), "one record per line");
        let (t_us, back) = from_jsonl_line(&line).unwrap();
        assert_eq!(t_us, 1_234_567);
        assert_eq!(back, snap);
    }

    #[test]
    fn jsonl_escapes_label_names() {
        let reg = MetricsRegistry::new(true);
        reg.counter(&labeled("calls_total", "fn", "odd\"name")).incr();
        let (_, back) = from_jsonl_line(&to_jsonl_line(0, &reg.snapshot())).unwrap();
        assert_eq!(back.counter(&labeled("calls_total", "fn", "odd\"name")), Some(1));
    }
}
