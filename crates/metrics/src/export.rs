//! Snapshot exporters: Prometheus text format and JSON-lines time series.
//!
//! Metric names may carry one embedded Prometheus-style label, e.g.
//! `task_latency_us{fn="graph.experiment"}` (see [`crate::labeled`]). The
//! Prometheus exporter splits that back into base name + label so multiple
//! task functions share one `# TYPE` family; the JSON exporter keeps the
//! full name as the object key.

use std::collections::HashMap;

use crate::histogram::{bucket_upper_bound, HistogramSnapshot};
use crate::json::{self, JsonValue};
use crate::registry::MetricsSnapshot;

/// Escape a label value for the Prometheus text format: backslash, double
/// quote and newline get backslash escapes, everything else passes through.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Parse a Prometheus label block (the text between `{` and `}`) into
/// `(key, value)` pairs, undoing [`escape_label_value`]. The inverse used by
/// [`validate_exposition`] and the exposition proptests.
pub fn parse_labels(labels: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut it = labels.chars();
    loop {
        let mut key = String::new();
        for c in it.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err(format!("empty label key in {labels:?}"));
        }
        if it.next() != Some('"') {
            return Err(format!("missing opening quote in {labels:?}"));
        }
        let mut value = String::new();
        loop {
            match it.next() {
                Some('\\') => match it.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in {labels:?}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated label value in {labels:?}")),
            }
        }
        pairs.push((key, value));
        match it.next() {
            None => return Ok(pairs),
            Some(',') => continue,
            Some(c) => return Err(format!("unexpected {c:?} after label value in {labels:?}")),
        }
    }
}

/// Split `base{labels}` into `(base, Some(labels))`, or `(name, None)`.
fn split_name(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(open) if name.ends_with('}') => (&name[..open], Some(&name[open + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Render `base` with optional pre-existing labels plus extra `label="value"`
/// pairs, producing a valid Prometheus series name.
fn series(base: &str, labels: Option<&str>, extra: &[(&str, &str)]) -> String {
    let mut pairs: Vec<String> = Vec::new();
    if let Some(l) = labels {
        pairs.push(l.to_string());
    }
    for (k, v) in extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        base.to_string()
    } else {
        format!("{base}{{{}}}", pairs.join(","))
    }
}

/// Format an `f64` so it survives text round-trips; non-finite values
/// (which no metric in this workspace produces) degrade to `0`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Render a snapshot in the Prometheus text exposition format.
///
/// Counters and gauges become single samples; histograms become proper
/// `histogram` families — cumulative `_bucket{le="..."}` samples (one per
/// occupied bucket, closed by `le="+Inf"`), `_sum` and `_count` — plus
/// pre-computed `quantile` samples and a `_max` gauge that a plain
/// Prometheus scraper would have to derive.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_type_line = String::new();
    let mut type_line = |out: &mut String, base: &str, kind: &str| {
        let line = format!("# TYPE {base} {kind}\n");
        if line != last_type_line {
            out.push_str(&line);
            last_type_line = line;
        }
    };

    for (name, value) in &snap.counters {
        let (base, labels) = split_name(name);
        type_line(&mut out, base, "counter");
        out.push_str(&format!("{} {}\n", series(base, labels, &[]), value));
    }
    for (name, value) in &snap.gauges {
        let (base, labels) = split_name(name);
        type_line(&mut out, base, "gauge");
        out.push_str(&format!("{} {}\n", series(base, labels, &[]), fmt_f64(*value)));
    }
    for (name, h) in &snap.histograms {
        let (base, labels) = split_name(name);
        type_line(&mut out, base, "histogram");
        let bucket = format!("{base}_bucket");
        for &(index, cum) in &h.buckets {
            let le = bucket_upper_bound(index as usize).to_string();
            out.push_str(&format!("{} {}\n", series(&bucket, labels, &[("le", &le)]), cum));
        }
        out.push_str(&format!("{} {}\n", series(&bucket, labels, &[("le", "+Inf")]), h.count));
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            out.push_str(&format!("{} {}\n", series(base, labels, &[("quantile", q)]), v));
        }
        out.push_str(&format!("{} {}\n", series(&format!("{base}_sum"), labels, &[]), h.sum));
        out.push_str(&format!("{} {}\n", series(&format!("{base}_count"), labels, &[]), h.count));
        out.push_str(&format!("{} {}\n", series(&format!("{base}_max"), labels, &[]), h.max));
    }
    out
}

/// Parse Prometheus text back into flat `(series, value)` samples,
/// skipping comments. The inverse of [`to_prometheus`] for round-trip
/// checks and bench assertions.
pub fn parse_prometheus(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let split_at = line.rfind(' ').ok_or_else(|| format!("no value in line {line:?}"))?;
        let (name, value) = line.split_at(split_at);
        let value: f64 = value.trim().parse().map_err(|_| format!("bad value in line {line:?}"))?;
        out.push((name.trim().to_string(), value));
    }
    Ok(out)
}

/// Canonical grouping key for a label set (order-insensitive, unambiguous).
fn labels_key(pairs: &[(String, String)]) -> String {
    let mut parts: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}\u{0}{v}")).collect();
    parts.sort();
    parts.join("\u{1}")
}

/// Structurally validate a Prometheus text exposition, enforcing the
/// histogram contract this crate's exporter promises:
///
/// * every sample line parses as `series value` with parseable labels;
/// * within each `_bucket` family (grouped by base name and non-`le`
///   labels), `le` bounds are strictly increasing and cumulative counts are
///   monotone non-decreasing;
/// * every bucket family is closed by an `le="+Inf"` sample whose value
///   equals the family's `_count` sample.
///
/// Returns the number of samples checked. Used by the exposition proptests,
/// the `prom-check` helper binary, and the CI scrape smoke test.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let samples = parse_prometheus(text)?;
    // (base, labels-minus-le) -> [(le, cumulative count)]
    let mut buckets: HashMap<(String, String), Vec<(f64, f64)>> = HashMap::new();
    let mut plain: HashMap<(String, String), f64> = HashMap::new();
    for (name, value) in &samples {
        let (series_name, raw_labels) = split_name(name);
        let pairs = match raw_labels {
            Some(l) => parse_labels(l)?,
            None => Vec::new(),
        };
        if let Some(base) = series_name.strip_suffix("_bucket") {
            let le_str = &pairs
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| format!("bucket series {name:?} lacks an le label"))?
                .1;
            let le = if le_str == "+Inf" {
                f64::INFINITY
            } else {
                le_str.parse().map_err(|_| format!("bad le bound {le_str:?} in {name:?}"))?
            };
            let others: Vec<(String, String)> =
                pairs.iter().filter(|(k, _)| k != "le").cloned().collect();
            buckets.entry((base.to_string(), labels_key(&others))).or_default().push((le, *value));
        } else {
            plain.insert((series_name.to_string(), labels_key(&pairs)), *value);
        }
    }
    for ((base, key), mut les) in buckets {
        les.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le bounds are never NaN"));
        for w in les.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(format!("histogram {base:?} repeats le bound {}", w[0].0));
            }
            if w[1].1 < w[0].1 {
                return Err(format!(
                    "histogram {base:?} bucket counts decrease: {} at le={} after {} at le={}",
                    w[1].1, w[1].0, w[0].1, w[0].0
                ));
            }
        }
        let &(last_le, inf_count) = les.last().expect("grouped families are non-empty");
        if !last_le.is_infinite() {
            return Err(format!("histogram {base:?} lacks an le=\"+Inf\" bucket"));
        }
        let count = plain
            .get(&(format!("{base}_count"), key))
            .ok_or_else(|| format!("histogram {base:?} lacks a _count sample"))?;
        if inf_count != *count {
            return Err(format!("histogram {base:?}: +Inf bucket {inf_count} != _count {count}"));
        }
    }
    Ok(samples.len())
}

/// Render a snapshot as one JSON-lines record (no trailing newline):
/// `{"t_us":..., "counters":{...}, "gauges":{...}, "histograms":{...}}`.
/// `t_us` is the caller's timestamp (µs since its chosen epoch).
pub fn to_jsonl_line(t_us: u64, snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"t_us\":{t_us},\"counters\":{{"));
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json::escape(name), value));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json::escape(name), fmt_f64(*value)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let buckets: Vec<String> = h.buckets.iter().map(|(i, c)| format!("[{i},{c}]")).collect();
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}",
            json::escape(name),
            h.count,
            h.sum,
            h.max,
            h.p50,
            h.p90,
            h.p99,
            buckets.join(",")
        ));
    }
    out.push_str("}}");
    out
}

/// Parse one JSON-lines record back into `(t_us, snapshot)`. The inverse of
/// [`to_jsonl_line`] (exact for values below 2^53, i.e. everything the
/// instrumented stack records).
pub fn from_jsonl_line(line: &str) -> Result<(u64, MetricsSnapshot), String> {
    let v = json::parse(line)?;
    let t_us = v.get("t_us").and_then(JsonValue::as_u64).ok_or("missing t_us")?;
    let obj = |key: &str| -> Result<&[(String, JsonValue)], String> {
        v.get(key).and_then(JsonValue::as_object).ok_or_else(|| format!("missing object {key:?}"))
    };
    let mut snap = MetricsSnapshot::default();
    for (name, value) in obj("counters")? {
        let value = value.as_u64().ok_or_else(|| format!("bad counter {name:?}"))?;
        snap.counters.push((name.clone(), value));
    }
    for (name, value) in obj("gauges")? {
        let value = value.as_f64().ok_or_else(|| format!("bad gauge {name:?}"))?;
        snap.gauges.push((name.clone(), value));
    }
    for (name, value) in obj("histograms")? {
        let field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("bad histogram field {name:?}.{key}"))
        };
        let mut buckets = Vec::new();
        for pair in value
            .get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("bad histogram buckets {name:?}"))?
        {
            let pair = pair.as_array().filter(|p| p.len() == 2);
            let (i, c) = match pair {
                Some([i, c]) => (i.as_u64(), c.as_u64()),
                _ => (None, None),
            };
            match (i, c) {
                (Some(i), Some(c)) => buckets.push((i as u32, c)),
                _ => return Err(format!("bad bucket pair in {name:?}")),
            }
        }
        snap.histograms.push((
            name.clone(),
            HistogramSnapshot {
                count: field("count")?,
                sum: field("sum")?,
                max: field("max")?,
                p50: field("p50")?,
                p90: field("p90")?,
                p99: field("p99")?,
                buckets,
            },
        ));
    }
    Ok((t_us, snap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{labeled, MetricsRegistry};

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new(true);
        reg.counter("tasks_completed_total").add(7);
        reg.counter("tasks_retried_total");
        reg.gauge("ready_queue_depth").set(3.0);
        reg.gauge("best_accuracy").set(0.9625);
        let h = reg.histogram(&labeled("task_latency_us", "fn", "graph.experiment"));
        for v in [100u64, 200, 400, 800] {
            h.record(v);
        }
        reg.histogram("sched_decision_us").record(12);
        reg
    }

    #[test]
    fn prometheus_output_has_expected_shape() {
        let text = to_prometheus(&sample_registry().snapshot());
        for needle in [
            "# TYPE tasks_completed_total counter",
            "tasks_completed_total 7",
            "tasks_retried_total 0",
            "# TYPE ready_queue_depth gauge",
            "best_accuracy 0.9625",
            "# TYPE task_latency_us histogram",
            "task_latency_us{fn=\"graph.experiment\",quantile=\"0.5\"}",
            "task_latency_us_bucket{fn=\"graph.experiment\",le=\"+Inf\"} 4",
            "task_latency_us_sum{fn=\"graph.experiment\"} 1500",
            "task_latency_us_count{fn=\"graph.experiment\"} 4",
            "task_latency_us_max{fn=\"graph.experiment\"} 800",
            "sched_decision_us_bucket{le=\"12\"} 1",
            "sched_decision_us{quantile=\"0.99\"} 12",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn prometheus_round_trips_every_sample() {
        let snap = sample_registry().snapshot();
        let series = parse_prometheus(&to_prometheus(&snap)).unwrap();
        let lookup = |name: &str| -> f64 {
            series
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("series {name:?} missing"))
                .1
        };
        assert_eq!(lookup("tasks_completed_total") as u64, 7);
        assert_eq!(lookup("tasks_retried_total") as u64, 0);
        assert_eq!(lookup("best_accuracy"), 0.9625);
        let h = snap.histogram(&labeled("task_latency_us", "fn", "graph.experiment")).unwrap();
        assert_eq!(
            lookup("task_latency_us{fn=\"graph.experiment\",quantile=\"0.9\"}") as u64,
            h.p90
        );
        assert_eq!(lookup("task_latency_us_count{fn=\"graph.experiment\"}") as u64, h.count);
        assert_eq!(lookup("task_latency_us_max{fn=\"graph.experiment\"}") as u64, h.max);
    }

    #[test]
    fn type_lines_are_deduplicated_per_family() {
        let reg = MetricsRegistry::new(true);
        reg.histogram(&labeled("lat_us", "fn", "a")).record(1);
        reg.histogram(&labeled("lat_us", "fn", "b")).record(2);
        let text = to_prometheus(&reg.snapshot());
        assert_eq!(
            text.matches("# TYPE lat_us histogram").count(),
            1,
            "one TYPE per family:\n{text}"
        );
    }

    #[test]
    fn label_values_escape_and_parse_back() {
        let ugly = "a\\b\"c\nd,e=\"f\"";
        let name = labeled("calls_total", "fn", ugly);
        let reg = MetricsRegistry::new(true);
        reg.counter(&name).add(3);
        let text = to_prometheus(&reg.snapshot());
        validate_exposition(&text).unwrap();
        let samples = parse_prometheus(&text).unwrap();
        let (series, value) = samples.iter().find(|(n, _)| n.contains("calls_total")).unwrap();
        let (base, labels) = super::split_name(series);
        assert_eq!(base, "calls_total");
        let pairs = parse_labels(labels.unwrap()).unwrap();
        assert_eq!(pairs, vec![("fn".to_string(), ugly.to_string())]);
        assert_eq!(*value as u64, 3);
    }

    #[test]
    fn validate_exposition_rejects_broken_histograms() {
        let ok = "h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 9\n";
        assert_eq!(validate_exposition(ok).unwrap(), 4);
        for (bad, why) in [
            ("h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\n", "missing _count"),
            ("h_bucket{le=\"1\"} 2\nh_count 2\n", "missing +Inf"),
            ("h_bucket{le=\"1\"} 9\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n", "non-monotone"),
            ("h_bucket{le=\"+Inf\"} 4\nh_count 5\n", "+Inf != count"),
            (
                "h_bucket{le=\"1\"} 2\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
                "duplicate le",
            ),
            ("h_bucket 2\nh_count 2\n", "bucket without le"),
        ] {
            assert!(validate_exposition(bad).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let snap = sample_registry().snapshot();
        let line = to_jsonl_line(1_234_567, &snap);
        assert!(!line.contains('\n'), "one record per line");
        let (t_us, back) = from_jsonl_line(&line).unwrap();
        assert_eq!(t_us, 1_234_567);
        assert_eq!(back, snap);
    }

    #[test]
    fn jsonl_escapes_label_names() {
        let reg = MetricsRegistry::new(true);
        reg.counter(&labeled("calls_total", "fn", "odd\"name")).incr();
        let (_, back) = from_jsonl_line(&to_jsonl_line(0, &reg.snapshot())).unwrap();
        assert_eq!(back.counter(&labeled("calls_total", "fn", "odd\"name")), Some(1));
    }
}
