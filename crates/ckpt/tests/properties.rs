//! Property tests for the journal framing: round-trip fidelity for random
//! record sequences, and crash-tolerance — recovery from an arbitrarily
//! truncated or tail-corrupted image never panics and never loses a
//! fully-framed record.

use ckpt::{crc32, JournalReader};
use proptest::prelude::*;

/// Frame a record sequence exactly as `Journal::append` does.
fn frame_all(records: &[Vec<u8>]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for r in records {
        bytes.extend_from_slice(&(r.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(r).to_le_bytes());
        bytes.extend_from_slice(r);
    }
    bytes
}

proptest! {
    #[test]
    fn journal_round_trips_random_record_sequences(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..40)
    ) {
        let image = frame_all(&records);
        let got = JournalReader::recover_bytes(&image);
        prop_assert_eq!(got.records, records);
        prop_assert!(!got.tail_truncated);
        prop_assert_eq!(got.clean_len, image.len() as u64);
    }

    #[test]
    fn truncation_never_panics_and_never_drops_a_framed_record(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..100), 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let image = frame_all(&records);
        let cut = (image.len() as f64 * cut_frac) as usize;
        let got = JournalReader::recover_bytes(&image[..cut]);
        // Every record whose full frame fits inside the cut must survive.
        let mut offset = 0usize;
        let mut expect = Vec::new();
        for r in &records {
            offset += 8 + r.len();
            if offset <= cut {
                expect.push(r.clone());
            } else {
                break;
            }
        }
        prop_assert_eq!(&got.records, &expect);
        // And nothing beyond the framed prefix is invented.
        prop_assert!(got.records.len() <= records.len());
        prop_assert_eq!(got.tail_truncated, got.clean_len != cut as u64);
    }

    #[test]
    fn tail_corruption_never_panics_and_prefix_survives(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..100), 1..20),
        flip_frac in 0.0f64..1.0,
    ) {
        let mut image = frame_all(&records);
        let flip_at = ((image.len() - 1) as f64 * flip_frac) as usize;
        image[flip_at] ^= 0xA5;
        let got = JournalReader::recover_bytes(&image);
        // Records framed wholly before the flipped byte are untouched and
        // must all be recovered intact.
        let mut offset = 0usize;
        let mut clean_prefix = 0usize;
        for r in &records {
            if offset + 8 + r.len() <= flip_at {
                clean_prefix += 1;
                offset += 8 + r.len();
            } else {
                break;
            }
        }
        prop_assert!(got.records.len() >= clean_prefix);
        for (g, r) in got.records.iter().zip(records.iter()).take(clean_prefix) {
            prop_assert_eq!(g, r);
        }
    }

    #[test]
    fn arbitrary_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..500)) {
        let got = JournalReader::recover_bytes(&bytes);
        prop_assert!(got.clean_len <= bytes.len() as u64);
    }
}
