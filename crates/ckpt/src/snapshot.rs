//! Atomic per-trial snapshot store with retention.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/<trial-key-hex>/e<epoch>.snap
//! ```
//!
//! One subdirectory per trial (callers key trials however they like — the
//! hpo layer uses an FNV-64 of the config label), one file per retained
//! epoch. Every write goes to `.tmp-e<epoch>.snap` in the same directory
//! and is renamed into place after fsync, so a concurrent or post-crash
//! reader only ever sees complete snapshots. [`DirStore::save`] applies
//! the retention policy after the rename, deleting the oldest snapshots
//! beyond the configured count.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Snapshot store rooted at a directory, keeping the newest `retain`
/// snapshots per trial.
#[derive(Debug, Clone)]
pub struct DirStore {
    root: PathBuf,
    retain: usize,
}

impl DirStore {
    /// Open (creating if needed) a store rooted at `root`, retaining the
    /// newest `retain` snapshots per trial (minimum 1).
    pub fn open(root: impl AsRef<Path>, retain: usize) -> std::io::Result<DirStore> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(DirStore { root, retain: retain.max(1) })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn trial_dir(&self, trial: u64) -> PathBuf {
        self.root.join(format!("{trial:016x}"))
    }

    /// Atomically write the snapshot for (`trial`, `epoch`), then prune
    /// snapshots beyond the retention count. Returns bytes written.
    pub fn save(&self, trial: u64, epoch: u32, blob: &[u8]) -> std::io::Result<u64> {
        let dir = self.trial_dir(trial);
        std::fs::create_dir_all(&dir)?;
        let tmp = dir.join(format!(".tmp-e{epoch}.snap"));
        let final_path = dir.join(format!("e{epoch}.snap"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(blob)?;
            f.flush()?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &final_path)?;
        self.prune(trial)?;
        Ok(blob.len() as u64)
    }

    /// Load the snapshot for (`trial`, `epoch`), or `None` if absent.
    pub fn load(&self, trial: u64, epoch: u32) -> std::io::Result<Option<Vec<u8>>> {
        let path = self.trial_dir(trial).join(format!("e{epoch}.snap"));
        match std::fs::read(&path) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// The highest-epoch snapshot for `trial`: `(epoch, blob)`, or `None`
    /// when the trial has none.
    pub fn latest(&self, trial: u64) -> std::io::Result<Option<(u32, Vec<u8>)>> {
        let mut epochs = self.epochs(trial)?;
        while let Some(epoch) = epochs.pop() {
            // A snapshot could be pruned between listing and reading; fall
            // back to the next-newest rather than erroring.
            if let Some(blob) = self.load(trial, epoch)? {
                return Ok(Some((epoch, blob)));
            }
        }
        Ok(None)
    }

    /// All retained snapshot epochs for `trial`, ascending.
    pub fn epochs(&self, trial: u64) -> std::io::Result<Vec<u32>> {
        let dir = self.trial_dir(trial);
        let entries = match std::fs::read_dir(&dir) {
            Ok(it) => it,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut epochs = Vec::new();
        for entry in entries {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name.strip_prefix('e').and_then(|s| s.strip_suffix(".snap")) {
                if let Ok(epoch) = num.parse::<u32>() {
                    epochs.push(epoch);
                }
            }
        }
        epochs.sort_unstable();
        Ok(epochs)
    }

    /// Delete every snapshot for `trial` (called when the trial finishes —
    /// a journaled outcome supersedes its snapshots).
    pub fn clear(&self, trial: u64) -> std::io::Result<()> {
        let dir = self.trial_dir(trial);
        match std::fs::remove_dir_all(&dir) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn prune(&self, trial: u64) -> std::io::Result<()> {
        let epochs = self.epochs(trial)?;
        if epochs.len() > self.retain {
            let dir = self.trial_dir(trial);
            for &epoch in &epochs[..epochs.len() - self.retain] {
                let _ = std::fs::remove_file(dir.join(format!("e{epoch}.snap")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str, retain: usize) -> DirStore {
        let dir = std::env::temp_dir().join(format!("ckpt-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DirStore::open(dir, retain).unwrap()
    }

    #[test]
    fn save_load_latest_round_trip() {
        let s = store("roundtrip", 3);
        assert!(s.latest(7).unwrap().is_none());
        s.save(7, 1, b"epoch-one").unwrap();
        s.save(7, 4, b"epoch-four").unwrap();
        assert_eq!(s.load(7, 1).unwrap().unwrap(), b"epoch-one");
        assert_eq!(s.latest(7).unwrap().unwrap(), (4, b"epoch-four".to_vec()));
        assert!(s.load(7, 2).unwrap().is_none());
        std::fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn retention_keeps_newest_n() {
        let s = store("retain", 2);
        for epoch in 1..=5 {
            s.save(1, epoch, format!("e{epoch}").as_bytes()).unwrap();
        }
        assert_eq!(s.epochs(1).unwrap(), vec![4, 5]);
        assert_eq!(s.latest(1).unwrap().unwrap().0, 5);
        std::fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn trials_are_isolated_and_clear_removes_one() {
        let s = store("isolate", 3);
        s.save(1, 1, b"one").unwrap();
        s.save(2, 9, b"two").unwrap();
        s.clear(1).unwrap();
        assert!(s.latest(1).unwrap().is_none());
        assert_eq!(s.latest(2).unwrap().unwrap(), (9, b"two".to_vec()));
        s.clear(999).unwrap(); // clearing an unknown trial is a no-op
        std::fs::remove_dir_all(s.root()).unwrap();
    }

    #[test]
    fn no_tmp_files_survive_a_save() {
        let s = store("tmp", 3);
        s.save(3, 2, &[0u8; 4096]).unwrap();
        let dir = s.root().join(format!("{:016x}", 3u64));
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(s.root()).unwrap();
    }
}
