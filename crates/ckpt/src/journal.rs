//! Append-only CRC-framed journal with truncated-tail recovery.
//!
//! Frame layout, repeated until end of file:
//!
//! ```text
//! [payload_len: u32 le][crc32(payload): u32 le][payload: payload_len bytes]
//! ```
//!
//! Writing appends a frame, flushes, and fsyncs before returning, so a
//! successful [`Journal::append`] means the record survives a crash.
//! A crash *during* an append can leave a torn frame at the tail — a
//! partial header, a short payload, or a payload whose CRC does not match.
//! [`JournalReader::recover`] treats any such tail as "the crash point":
//! it returns every fully-framed record before it and flags the
//! truncation, never panicking and never dropping a complete record.
//! [`Journal::open`] re-uses the same scan to truncate a torn tail before
//! appending, so one file can live through any number of crash/resume
//! cycles.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc32;

/// Refuse frames claiming more than this many bytes: anything larger in
/// this repo is garbage (a torn header read as a length), not a record.
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Append handle for a journal file. Created via [`Journal::create`] (new
/// or truncate) or [`Journal::open`] (resume appending after recovery).
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Create (or truncate) a journal at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(&path)?;
        Ok(Journal { file, path })
    }

    /// Open an existing journal for appending, truncating any torn tail
    /// left by a crash so new frames start at a clean boundary. Creates
    /// the file if it does not exist.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        if !path.exists() {
            return Journal::create(path);
        }
        let recovered = JournalReader::recover(&path)?;
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(recovered.clean_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(Journal { file, path })
    }

    /// Append one record, flushing and fsyncing before returning.
    /// Returns the number of bytes written (frame header + payload).
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        assert!(payload.len() as u64 <= MAX_RECORD_LEN as u64, "journal record too large");
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.file.sync_data()?;
        Ok(frame.len() as u64)
    }

    /// The path this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Result of scanning a journal file: every intact record plus where the
/// clean prefix ends.
#[derive(Debug)]
pub struct RecoveredLog {
    /// Payloads of all fully-framed, CRC-clean records, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte offset where the clean prefix ends (== file length when the
    /// file is undamaged).
    pub clean_len: u64,
    /// True when bytes after `clean_len` existed — a torn append from a
    /// crash, or outside corruption.
    pub tail_truncated: bool,
}

/// Reader side: scan a journal file tolerating a torn tail.
#[derive(Debug)]
pub struct JournalReader;

impl JournalReader {
    /// Scan `path` and return every intact record. A truncated or corrupt
    /// tail stops the scan cleanly (flagged via
    /// [`RecoveredLog::tail_truncated`]) — it is never an error and never
    /// panics. A missing file reads as an empty log.
    pub fn recover(path: impl AsRef<Path>) -> std::io::Result<RecoveredLog> {
        let bytes = match std::fs::read(path.as_ref()) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        Ok(Self::recover_bytes(&bytes))
    }

    /// Scan an in-memory journal image (the unit under proptest).
    pub fn recover_bytes(bytes: &[u8]) -> RecoveredLog {
        let mut records = Vec::new();
        let mut pos = 0usize;
        loop {
            // Torn header?
            if bytes.len() - pos < 8 {
                break;
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            // Absurd length = garbage header; short payload = torn append.
            if len > MAX_RECORD_LEN || bytes.len() - pos - 8 < len as usize {
                break;
            }
            let payload = &bytes[pos + 8..pos + 8 + len as usize];
            if crc32(payload) != crc {
                break;
            }
            records.push(payload.to_vec());
            pos += 8 + len as usize;
        }
        RecoveredLog { records, clean_len: pos as u64, tail_truncated: pos != bytes.len() }
    }

    /// Read a journal one record at a time without materialising the whole
    /// file (used by tools; `recover` is the common path).
    pub fn stream(path: impl AsRef<Path>) -> std::io::Result<impl Iterator<Item = Vec<u8>>> {
        let mut file = File::open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        Ok(Self::recover_bytes(&bytes).records.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ckpt-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_preserves_records_in_order() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("sweep.journal");
        let mut j = Journal::create(&path).unwrap();
        let records: Vec<Vec<u8>> =
            vec![b"alpha".to_vec(), vec![], vec![0u8; 1000], b"omega".to_vec()];
        for r in &records {
            j.append(r).unwrap();
        }
        let got = JournalReader::recover(&path).unwrap();
        assert_eq!(got.records, records);
        assert!(!got.tail_truncated);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = tmpdir("torn");
        let path = dir.join("sweep.journal");
        let mut j = Journal::create(&path).unwrap();
        j.append(b"keep-me").unwrap();
        j.append(b"also-keep").unwrap();
        drop(j);
        // Simulate a crash mid-append: a partial frame at the tail.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&20u32.to_le_bytes()).unwrap(); // header claims 20 bytes...
        f.write_all(&[1, 2, 3]).unwrap(); // ...crash after 3
        drop(f);
        let got = JournalReader::recover(&path).unwrap();
        assert_eq!(got.records.len(), 2);
        assert!(got.tail_truncated);
        // Re-opening repairs the tail and appending continues cleanly.
        let mut j = Journal::open(&path).unwrap();
        j.append(b"after-crash").unwrap();
        let got = JournalReader::recover(&path).unwrap();
        assert_eq!(
            got.records,
            vec![b"keep-me".to_vec(), b"also-keep".to_vec(), b"after-crash".to_vec()]
        );
        assert!(!got.tail_truncated);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_scan_at_last_clean_record() {
        let dir = tmpdir("crc");
        let path = dir.join("sweep.journal");
        let mut j = Journal::create(&path).unwrap();
        j.append(b"good").unwrap();
        let total = j.append(b"flipped").unwrap() + 12; // 12 = frame for "good"
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, total);
        *bytes.last_mut().unwrap() ^= 0xFF; // flip a payload bit in record 2
        std::fs::write(&path, &bytes).unwrap();
        let got = JournalReader::recover(&path).unwrap();
        assert_eq!(got.records, vec![b"good".to_vec()]);
        assert!(got.tail_truncated);
        assert_eq!(got.clean_len, 12);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_file_reads_as_empty_log() {
        let got = JournalReader::recover("/nonexistent/dir/none.journal").unwrap();
        assert!(got.records.is_empty());
        assert!(!got.tail_truncated);
    }

    #[test]
    fn absurd_length_header_is_treated_as_torn() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let got = JournalReader::recover_bytes(&bytes);
        assert!(got.records.is_empty());
        assert!(got.tail_truncated);
        assert_eq!(got.clean_len, 0);
    }
}
