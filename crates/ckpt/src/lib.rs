//! Checkpoint & recovery primitives for long-running sweeps.
//!
//! Two building blocks, both dependency-free and byte-oriented (callers
//! bring their own record encoding):
//!
//! - [`journal`] — an append-only, CRC-framed log. Each record is framed
//!   as `[len u32-le][crc32 u32-le][payload]`; appends are flushed and
//!   fsynced so a crash can lose at most the record being written. The
//!   reader walks frames and stops cleanly at the first torn/corrupt
//!   frame, so every fully-framed record before a crash survives, and
//!   re-opening for append truncates the torn tail before continuing.
//! - [`snapshot`] — a directory store of point-in-time blobs (model
//!   weights + optimizer state, in this repo). Each snapshot is written
//!   to a temp file then atomically renamed into place, so a reader never
//!   observes a half-written snapshot; a retention policy bounds disk use
//!   by keeping only the newest N per trial.
//!
//! The sweep-level record types (trial submitted / epoch / finished) live
//! in the `hpo` crate; the training-level snapshot payload lives in
//! `tinyml::snapshot`. This crate only guarantees that bytes given to it
//! come back intact or not at all — never silently corrupted.

#![warn(missing_docs)]

pub mod journal;
pub mod snapshot;

pub use journal::{Journal, JournalReader, RecoveredLog};
pub use snapshot::DirStore;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) over `bytes`.
///
/// Hand-rolled table-driven implementation — the framing checksum for
/// journal records. Matches the ubiquitous zlib/`cksum -o3` CRC so frames
/// can be inspected with standard tools.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" (IEEE CRC-32).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }
}
