//! Cluster assembly: a set of nodes, an interconnect, and a file-system mode.

use crate::node::NodeSpec;

/// Interconnect parameters for staged data transfers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    /// One-way message latency, µs.
    pub latency_us: u64,
    /// Bandwidth in bytes per µs (= MB/s).
    pub bytes_per_us: f64,
}

impl Interconnect {
    /// MareNostrum-class 100 Gb/s-ish fabric: 1 µs latency, ~12 GB/s.
    pub fn hpc() -> Self {
        Interconnect { latency_us: 1, bytes_per_us: 12_000.0 }
    }

    /// Commodity 10 GbE: 50 µs latency, ~1.2 GB/s.
    pub fn ethernet() -> Self {
        Interconnect { latency_us: 50, bytes_per_us: 1_200.0 }
    }
}

/// A cluster: nodes plus shared infrastructure.
///
/// The paper distinguishes two deployment modes (§4): with a Parallel File
/// System "all tasks can read and write to the PFS"; without one "the data
/// required by the task is copied to the specific node". [`Cluster::pfs`]
/// selects between them and feeds [`crate::transfer::TransferModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Node inventory, indexed by node id (0-based).
    pub nodes: Vec<NodeSpec>,
    /// Whether a parallel file system (e.g. IBM GPFS) is mounted everywhere.
    pub pfs: bool,
    /// Interconnect used for staged copies when `pfs` is false.
    pub interconnect: Interconnect,
}

impl Cluster {
    /// A cluster of `n` identical nodes with a PFS (the common HPC case the
    /// paper highlights: "most HPC clusters are equipped with PFS").
    pub fn homogeneous(n: usize, spec: NodeSpec) -> Self {
        Cluster { nodes: vec![spec; n], pfs: true, interconnect: Interconnect::hpc() }
    }

    /// Build from an explicit node list.
    pub fn from_nodes(nodes: Vec<NodeSpec>) -> Self {
        Cluster { nodes, pfs: true, interconnect: Interconnect::hpc() }
    }

    /// Disable the PFS, forcing staged copies (chainable).
    pub fn without_pfs(mut self) -> Self {
        self.pfs = false;
        self
    }

    /// Replace the interconnect (chainable).
    pub fn with_interconnect(mut self, ic: Interconnect) -> Self {
        self.interconnect = ic;
        self
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total CPU computing units in the cluster.
    pub fn total_cores(&self) -> u32 {
        self.nodes.iter().map(|n| n.cores).sum()
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.nodes.iter().map(|n| n.gpu_count()).sum()
    }

    /// Whether any node can ever satisfy a `(cores, gpus, mem)` request —
    /// used by the runtime to reject unsatisfiable constraints at submission
    /// instead of deadlocking.
    pub fn any_node_fits(&self, cores: u32, gpus: u32, mem_gib: u32) -> bool {
        self.nodes.iter().any(|n| n.can_fit(cores, gpus, mem_gib))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::GpuModel;

    #[test]
    fn homogeneous_builder_replicates_spec() {
        let c = Cluster::homogeneous(28, NodeSpec::marenostrum4());
        assert_eq!(c.node_count(), 28);
        assert_eq!(c.total_cores(), 28 * 48);
        assert_eq!(c.total_gpus(), 0);
        assert!(c.pfs);
    }

    #[test]
    fn heterogeneous_cluster_counts() {
        let c = Cluster::from_nodes(vec![NodeSpec::marenostrum4(), NodeSpec::cte_power9()]);
        assert_eq!(c.total_cores(), 48 + 160);
        assert_eq!(c.total_gpus(), 4);
    }

    #[test]
    fn chainable_configuration() {
        let c = Cluster::homogeneous(1, NodeSpec::minotauro())
            .without_pfs()
            .with_interconnect(Interconnect::ethernet());
        assert!(!c.pfs);
        assert_eq!(c.interconnect.latency_us, 50);
    }

    #[test]
    fn any_node_fits_scans_all_nodes() {
        let c = Cluster::from_nodes(vec![
            NodeSpec::marenostrum4(),
            NodeSpec::new("gpu", 8, vec![GpuModel::Generic], 64),
        ]);
        assert!(c.any_node_fits(48, 0, 0), "MN4 node fits pure-CPU task");
        assert!(c.any_node_fits(1, 1, 0), "gpu node fits GPU task");
        assert!(!c.any_node_fits(48, 1, 0), "no node has 48 cores AND a GPU");
        assert!(!c.any_node_fits(0, 2, 0));
    }
}
