//! `cluster` — cluster topology model and deterministic discrete-event
//! simulation substrate.
//!
//! The paper evaluates on three BSC machines: MareNostrum 4 (2× Intel Xeon
//! Platinum, 48 cores/node), MinoTauro (2× K80 GPUs + 2× 8-core Haswell) and
//! CTE-POWER9 (160 hardware threads + 4× V100). We cannot allocate those, so
//! this crate provides the closest synthetic equivalent: a parameterised
//! cluster model ([`node`], [`topology`]) plus a deterministic
//! discrete-event engine ([`event`], [`sim`]) with calibrated cost models
//! ([`cost`]), a data-transfer model distinguishing parallel file systems
//! from per-node staging ([`transfer`]), and seeded failure injection
//! ([`failure`]).
//!
//! Virtual time is `u64` microseconds throughout, matching `paratrace`.
//!
//! Two consumers exist:
//! * `rcompss`'s simulated backend drives [`event::EventQueue`] directly and
//!   implements the full COMPSs scheduling semantics on top;
//! * [`sim::ClusterSim`] is a self-contained list-scheduling simulator for
//!   *rigid, independent* jobs (each needing a fixed number of cores/GPUs for
//!   a fixed duration), which is exactly the structure of the paper's HPO
//!   workloads and is used for the Figure 9 parameter sweeps and for
//!   property-testing makespan bounds.

#![warn(missing_docs)]

pub mod cost;
pub mod event;
pub mod failure;
pub mod node;
pub mod sim;
pub mod topology;
pub mod transfer;

pub use cost::{Allocation, TrainingCost, WorkProfile};
pub use event::EventQueue;
pub use failure::FailureInjector;
pub use node::{GpuModel, NodeSpec};
pub use sim::{ClusterSim, Job, JobRecord, SimOutcome};
pub use topology::{Cluster, Interconnect};

/// One second in virtual-time units (µs).
pub const SECOND: u64 = 1_000_000;
/// One minute in virtual-time units (µs).
pub const MINUTE: u64 = 60 * SECOND;
