//! Data-transfer cost model.
//!
//! Paper §4: "When not using a Parallel File System (PFS) such as IBM's
//! General Parallel File System then the data required by the task is copied
//! to the specific node that the task will be executed. Otherwise all tasks
//! can read and write to the PFS."
//!
//! The model therefore has two modes:
//! * **PFS** — every node reads shared storage; a read costs
//!   `bytes / pfs_bandwidth` regardless of placement (no staging step).
//! * **staged** — data living on another node must be copied over the
//!   interconnect before the task starts: `latency + bytes / bandwidth`.

use crate::topology::{Cluster, Interconnect};

/// Where a piece of data currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataLocation {
    /// On the shared parallel file system.
    Pfs,
    /// In the memory/local disk of one node.
    Node(u32),
}

/// Transfer-time calculator for a given cluster configuration.
#[derive(Debug, Clone)]
pub struct TransferModel {
    pfs: bool,
    interconnect: Interconnect,
    /// PFS streaming read bandwidth, bytes per µs. GPFS-class: ~8 GB/s.
    pub pfs_bytes_per_us: f64,
}

impl TransferModel {
    /// Build from a cluster description.
    pub fn for_cluster(cluster: &Cluster) -> Self {
        TransferModel {
            pfs: cluster.pfs,
            interconnect: cluster.interconnect,
            pfs_bytes_per_us: 8_000.0,
        }
    }

    /// Whether the cluster mounts a PFS.
    pub fn has_pfs(&self) -> bool {
        self.pfs
    }

    /// Time (µs) to make `bytes` of data at `from` available on node `to`.
    ///
    /// Returns `0` when the data is already local. Under PFS, data is never
    /// "local" in the staging sense but reads are uniform and cheap.
    pub fn time_to_node(&self, bytes: u64, from: DataLocation, to: u32) -> u64 {
        match (self.pfs, from) {
            // PFS read: uniform cost from any node.
            (true, _) => (bytes as f64 / self.pfs_bytes_per_us) as u64,
            (false, DataLocation::Node(n)) if n == to => 0,
            (false, DataLocation::Node(_)) | (false, DataLocation::Pfs) => {
                self.interconnect.latency_us
                    + (bytes as f64 / self.interconnect.bytes_per_us) as u64
            }
        }
    }

    /// Total staging time for a set of inputs `(bytes, location)` destined
    /// for node `to`. Transfers are serialised through the node's NIC, which
    /// is the conservative model COMPSs' single worker process exhibits.
    pub fn stage_inputs(&self, inputs: &[(u64, DataLocation)], to: u32) -> u64 {
        inputs.iter().map(|&(b, loc)| self.time_to_node(b, loc, to)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;

    fn staged_cluster() -> Cluster {
        Cluster::homogeneous(4, NodeSpec::marenostrum4()).without_pfs()
    }

    #[test]
    fn pfs_reads_are_uniform_across_nodes() {
        let c = Cluster::homogeneous(4, NodeSpec::marenostrum4());
        let m = TransferModel::for_cluster(&c);
        assert!(m.has_pfs());
        let t0 = m.time_to_node(1_000_000, DataLocation::Pfs, 0);
        let t3 = m.time_to_node(1_000_000, DataLocation::Node(1), 3);
        assert_eq!(t0, t3, "PFS cost ignores placement");
        assert_eq!(t0, 125, "1 MB at 8 GB/s = 125 µs");
    }

    #[test]
    fn local_data_is_free_without_pfs() {
        let m = TransferModel::for_cluster(&staged_cluster());
        assert!(!m.has_pfs());
        assert_eq!(m.time_to_node(u64::MAX / 2, DataLocation::Node(2), 2), 0);
    }

    #[test]
    fn remote_data_pays_latency_plus_bandwidth() {
        let m = TransferModel::for_cluster(&staged_cluster());
        // hpc(): 1 µs latency, 12 000 bytes/µs
        assert_eq!(m.time_to_node(12_000_000, DataLocation::Node(0), 1), 1 + 1000);
        assert_eq!(m.time_to_node(0, DataLocation::Node(0), 1), 1, "latency floor");
    }

    #[test]
    fn staging_from_pfs_location_without_pfs_mounted_copies() {
        // Data initially "on storage" still needs a copy when nodes can't
        // mount it directly.
        let m = TransferModel::for_cluster(&staged_cluster());
        assert!(m.time_to_node(1_000, DataLocation::Pfs, 0) > 0);
    }

    #[test]
    fn stage_inputs_sums_serially() {
        let m = TransferModel::for_cluster(&staged_cluster());
        let inputs = [
            (12_000u64, DataLocation::Node(0)),
            (12_000, DataLocation::Node(1)),
            (5, DataLocation::Node(2)),
        ];
        let total = m.stage_inputs(&inputs, 2);
        // two remote transfers of (1+1)µs each + one local 0
        assert_eq!(total, 2 * (1 + 1));
    }
}
