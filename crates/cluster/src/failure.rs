//! Seeded failure injection.
//!
//! The paper's fault-tolerance story (§3, §4): "If a task fails for whatever
//! reason (such as node failure), the runtime tries to start the same task in
//! the same node, if it fails again, its restarted in another node." To
//! exercise that path deterministically we inject failures from a seeded
//! plan rather than from real hardware.
//!
//! Two mechanisms:
//! * **per-attempt task failures** — a hash of `(seed, task, attempt)`
//!   decides whether execution attempt `attempt` of `task` fails. Purely
//!   functional, so the threaded and simulated backends agree.
//! * **scheduled node failures** — "node `n` dies at virtual time `t`",
//!   killing everything running there and removing the node from the pool.

/// Deterministic failure oracle.
#[derive(Debug, Clone)]
pub struct FailureInjector {
    seed: u64,
    /// Probability in `[0, 1]` that any given task attempt fails.
    task_failure_rate: f64,
    /// Scheduled node deaths `(virtual time µs, node id)`.
    node_failures: Vec<(u64, u32)>,
    /// Forced task failures `(task id, attempt)`, 1-based attempt.
    forced: Vec<(u64, u32)>,
}

impl FailureInjector {
    /// No failures at all (the default for every experiment that doesn't
    /// study fault tolerance).
    pub fn none() -> Self {
        FailureInjector {
            seed: 0,
            task_failure_rate: 0.0,
            node_failures: Vec::new(),
            forced: Vec::new(),
        }
    }

    /// Fail each task attempt independently with probability `rate`.
    pub fn random(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        FailureInjector {
            seed,
            task_failure_rate: rate,
            node_failures: Vec::new(),
            forced: Vec::new(),
        }
    }

    /// Add a scheduled node failure (chainable).
    pub fn with_node_failure(mut self, at_us: u64, node: u32) -> Self {
        self.node_failures.push((at_us, node));
        self.node_failures.sort_unstable();
        self
    }

    /// Force attempt `attempt` (1-based) of `task` to fail (chainable).
    /// Forcing attempts 1 and 2 reproduces the paper's "retry same node,
    /// then move node" escalation.
    pub fn with_task_failure(mut self, task: u64, attempt: u32) -> Self {
        self.forced.push((task, attempt));
        self
    }

    /// Whether execution attempt `attempt` (1-based) of `task` fails.
    pub fn attempt_fails(&self, task: u64, attempt: u32) -> bool {
        if self.forced.contains(&(task, attempt)) {
            return true;
        }
        if self.task_failure_rate <= 0.0 {
            return false;
        }
        // splitmix64 over (seed, task, attempt) → uniform in [0,1).
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(task.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(attempt as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x as f64 / u64::MAX as f64) < self.task_failure_rate
    }

    /// Scheduled node failures in time order.
    pub fn node_failures(&self) -> &[(u64, u32)] {
        &self.node_failures
    }

    /// The first scheduled node failure strictly after `t`, if any.
    pub fn next_node_failure_after(&self, t: u64) -> Option<(u64, u32)> {
        self.node_failures.iter().copied().find(|&(ft, _)| ft > t)
    }
}

impl Default for FailureInjector {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let f = FailureInjector::none();
        for task in 0..100 {
            for attempt in 1..4 {
                assert!(!f.attempt_fails(task, attempt));
            }
        }
    }

    #[test]
    fn forced_failures_hit_exactly_the_named_attempt() {
        let f = FailureInjector::none().with_task_failure(7, 1).with_task_failure(7, 2);
        assert!(f.attempt_fails(7, 1));
        assert!(f.attempt_fails(7, 2));
        assert!(!f.attempt_fails(7, 3), "third attempt succeeds");
        assert!(!f.attempt_fails(8, 1));
    }

    #[test]
    fn random_failures_are_deterministic_and_near_rate() {
        let f = FailureInjector::random(42, 0.25);
        let g = FailureInjector::random(42, 0.25);
        let n = 10_000;
        let fails = (0..n).filter(|&t| f.attempt_fails(t, 1)).count();
        let fails2 = (0..n).filter(|&t| g.attempt_fails(t, 1)).count();
        assert_eq!(fails, fails2, "same seed ⇒ same plan");
        let rate = fails as f64 / n as f64;
        assert!((0.2..0.3).contains(&rate), "empirical rate {rate}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FailureInjector::random(1, 0.5);
        let b = FailureInjector::random(2, 0.5);
        let diverges = (0..1000u64).any(|t| a.attempt_fails(t, 1) != b.attempt_fails(t, 1));
        assert!(diverges);
    }

    #[test]
    fn node_failures_sorted_and_queryable() {
        let f = FailureInjector::none().with_node_failure(500, 2).with_node_failure(100, 0);
        assert_eq!(f.node_failures(), &[(100, 0), (500, 2)]);
        assert_eq!(f.next_node_failure_after(0), Some((100, 0)));
        assert_eq!(f.next_node_failure_after(100), Some((500, 2)));
        assert_eq!(f.next_node_failure_after(500), None);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_rate_rejected() {
        let _ = FailureInjector::random(0, 1.5);
    }
}
