//! Deterministic virtual-time event queue.
//!
//! A binary heap keyed by `(time, sequence)` — the sequence number breaks
//! ties by insertion order, which makes simulations bit-for-bit reproducible
//! regardless of heap internals. This is the property the DESIGN.md
//! "DES determinism" invariant rests on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with a monotone virtual clock.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: u64,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at virtual time 0.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), now: 0, seq: 0 }
    }

    /// Current virtual time (µs). Advances only via [`EventQueue::pop`].
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedule `event` at absolute virtual time `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past — a DES must never rewind.
    pub fn schedule_at(&mut self, time: u64, event: E) {
        assert!(time >= self.now, "cannot schedule into the past ({} < {})", time, self.now);
        self.heap.push(Reverse(Entry { time, seq: self.seq, event }));
        self.seq += 1;
    }

    /// Schedule `event` after `delay` µs of virtual time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|Reverse(e)| {
            debug_assert!(e.time >= self.now);
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is exhausted.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(7, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.schedule_in(3, ());
        assert_eq!(q.peek_time(), Some(10));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.pop();
        q.schedule_at(5, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1, 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn schedule_in_saturates_at_u64_max() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule_at(u64::MAX, 1);
        q.pop();
        q.schedule_in(10, 2); // must not overflow/panic
        assert_eq!(q.peek_time(), Some(u64::MAX));
    }
}
