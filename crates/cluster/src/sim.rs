//! Deterministic list-scheduling simulator for rigid, independent jobs.
//!
//! The paper's HPO workloads are exactly this shape: N independent training
//! tasks, each demanding a fixed number of cores (and possibly one GPU) for
//! its whole lifetime. `ClusterSim` places them FIFO/first-fit onto a
//! [`Cluster`], tracks *which* cores each job owns (the paper's CPU-affinity
//! guarantee), honours runtime-reserved cores (the COMPSs worker takes half a
//! node in Figure 5 and a whole node in Figure 6), injects failures, and
//! replays the paper's retry policy: *retry on the same node once, then move
//! to a different node*.
//!
//! The full dependency-aware runtime lives in `rcompss`; this simulator is
//! the substrate for the Figure 9 sweeps and the scheduling property tests.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::event::EventQueue;
use crate::failure::FailureInjector;
use crate::topology::Cluster;

/// A rigid job: fixed resource demand, fixed duration.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Caller-chosen id (unique per submission batch).
    pub id: u64,
    /// Display name (shows up in traces).
    pub name: String,
    /// CPU computing units required.
    pub cores: u32,
    /// GPUs required.
    pub gpus: u32,
    /// Execution time once started, µs.
    pub duration_us: u64,
}

impl Job {
    /// Convenience constructor for CPU-only jobs.
    pub fn cpu(id: u64, cores: u32, duration_us: u64) -> Self {
        Job { id, name: format!("job{id}"), cores, gpus: 0, duration_us }
    }
}

/// One execution attempt of a job as it happened in simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id.
    pub job: u64,
    /// Job name.
    pub name: String,
    /// Node it ran on.
    pub node: u32,
    /// Exact core ids owned for the duration (affinity set).
    pub cores: Vec<u32>,
    /// Exact GPU ids owned.
    pub gpus: Vec<u32>,
    /// Start time, µs.
    pub start: u64,
    /// End time (completion or kill), µs.
    pub end: u64,
    /// 1-based attempt number.
    pub attempt: u32,
    /// Whether this attempt completed successfully.
    pub completed: bool,
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Time the last job completed, µs.
    pub makespan: u64,
    /// Every execution attempt, in start order.
    pub records: Vec<JobRecord>,
    /// Jobs that exhausted their retry budget.
    pub failed_jobs: Vec<u64>,
    /// Total failed attempts observed.
    pub failures: u32,
    /// Reserved `(node, core)` pairs, for rendering.
    pub reserved: Vec<(u32, u32)>,
}

impl SimOutcome {
    /// Records of successful attempts only.
    pub fn completed(&self) -> impl Iterator<Item = &JobRecord> {
        self.records.iter().filter(|r| r.completed)
    }

    /// Number of distinct jobs that completed.
    pub fn jobs_completed(&self) -> usize {
        self.completed().map(|r| r.job).collect::<BTreeSet<_>>().len()
    }
}

#[derive(Debug)]
enum Event {
    Finish { exec: u64 },
    NodeFail { node: u32 },
}

#[derive(Debug)]
struct NodeState {
    free_cores: BTreeSet<u32>,
    free_gpus: BTreeSet<u32>,
    alive: bool,
}

#[derive(Debug)]
struct Running {
    job_idx: usize,
    node: u32,
    cores: Vec<u32>,
    gpus: Vec<u32>,
    start: u64,
    attempt: u32,
}

#[derive(Debug, Clone)]
struct Pending {
    job_idx: usize,
    attempt: u32,
    /// Node the previous attempt ran on: the paper retries there first…
    prefer: Option<u32>,
    /// …and avoids it after a second failure on the same node.
    exclude: Option<u32>,
}

/// The simulator. Construct, configure, [`ClusterSim::run`].
#[derive(Debug, Clone)]
pub struct ClusterSim {
    cluster: Cluster,
    injector: FailureInjector,
    /// cores reserved for the runtime worker, per node id.
    reserved: BTreeMap<u32, u32>,
    /// Maximum execution attempts per job.
    pub max_attempts: u32,
}

impl ClusterSim {
    /// Simulator over `cluster` with no failures.
    pub fn new(cluster: Cluster) -> Self {
        ClusterSim {
            cluster,
            injector: FailureInjector::none(),
            reserved: BTreeMap::new(),
            max_attempts: 3,
        }
    }

    /// Install a failure injector (chainable).
    pub fn with_failures(mut self, injector: FailureInjector) -> Self {
        self.injector = injector;
        self
    }

    /// Reserve `cores` cores of `node` for the runtime worker (chainable).
    /// Reserved cores never run jobs — they render as `#` in Gantt charts,
    /// matching the half-node worker of the paper's Figure 5.
    pub fn reserve_cores(mut self, node: u32, cores: u32) -> Self {
        *self.reserved.entry(node).or_insert(0) += cores;
        self
    }

    /// Run `jobs` to completion (or retry exhaustion). Deterministic.
    pub fn run(&self, jobs: &[Job]) -> SimOutcome {
        // Global-registry observability: inert (one relaxed load at entry)
        // unless someone enabled `runmetrics::global()`.
        let metrics = {
            let reg = runmetrics::global();
            reg.enabled().then(|| {
                (
                    reg.histogram("cluster_job_latency_us"),
                    reg.counter("cluster_jobs_completed_total"),
                    reg.counter("cluster_attempt_failures_total"),
                    reg.counter("cluster_node_failures_total"),
                )
            })
        };
        let mut nodes: Vec<NodeState> = self
            .cluster
            .nodes
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let reserved = self.reserved.get(&(i as u32)).copied().unwrap_or(0).min(spec.cores);
                NodeState {
                    // reserved cores are the lowest-numbered ones
                    free_cores: (reserved..spec.cores).collect(),
                    free_gpus: (0..spec.gpu_count()).collect(),
                    alive: true,
                }
            })
            .collect();

        let reserved_pairs: Vec<(u32, u32)> = self
            .reserved
            .iter()
            .flat_map(|(&n, &c)| {
                (0..c.min(self.cluster.nodes[n as usize].cores)).map(move |k| (n, k))
            })
            .collect();

        let mut queue: EventQueue<Event> = EventQueue::new();
        for &(t, n) in self.injector.node_failures() {
            queue.schedule_at(t, Event::NodeFail { node: n });
        }

        let mut pending: VecDeque<Pending> = jobs
            .iter()
            .enumerate()
            .map(|(i, _)| Pending { job_idx: i, attempt: 1, prefer: None, exclude: None })
            .collect();
        let mut running: BTreeMap<u64, Running> = BTreeMap::new();
        let mut next_exec: u64 = 0;
        let mut records: Vec<JobRecord> = Vec::new();
        let mut failed_jobs: Vec<u64> = Vec::new();
        let mut failures: u32 = 0;
        let mut makespan: u64 = 0;

        // Main loop: schedule, then pump events.
        loop {
            // Scheduling pass (FIFO with first-fit; a job that can't be
            // placed does NOT block later jobs — COMPSs dispatches any ready
            // task whose constraints are satisfiable *now*, but we keep FIFO
            // fairness by scanning in queue order).
            let now = queue.now();
            let mut idx = 0;
            while idx < pending.len() {
                let p = pending[idx].clone();
                let job = &jobs[p.job_idx];
                let placed = self.place(job, &p, &mut nodes);
                if let Some((node, cores, gpus)) = placed {
                    pending.remove(idx);
                    let exec = next_exec;
                    next_exec += 1;
                    let will_fail = self.injector.attempt_fails(job.id, p.attempt);
                    // A failing attempt still occupies resources for its full
                    // duration (the training crashes at some point; we charge
                    // the whole slot, a conservative model).
                    queue.schedule_at(now + job.duration_us, Event::Finish { exec });
                    running.insert(
                        exec,
                        Running {
                            job_idx: p.job_idx,
                            node,
                            cores,
                            gpus,
                            start: now,
                            attempt: p.attempt,
                        },
                    );
                    let _ = will_fail; // consulted at finish time
                } else {
                    idx += 1;
                }
            }

            let Some((t, ev)) = queue.pop() else { break };
            match ev {
                Event::Finish { exec } => {
                    let Some(r) = running.remove(&exec) else { continue };
                    let job = &jobs[r.job_idx];
                    let failed = self.injector.attempt_fails(job.id, r.attempt);
                    // Free resources.
                    let ns = &mut nodes[r.node as usize];
                    if ns.alive {
                        ns.free_cores.extend(r.cores.iter().copied());
                        ns.free_gpus.extend(r.gpus.iter().copied());
                    }
                    records.push(JobRecord {
                        job: job.id,
                        name: job.name.clone(),
                        node: r.node,
                        cores: r.cores,
                        gpus: r.gpus,
                        start: r.start,
                        end: t,
                        attempt: r.attempt,
                        completed: !failed,
                    });
                    if failed {
                        failures += 1;
                        if let Some((_, _, fail_ctr, _)) = &metrics {
                            fail_ctr.incr();
                        }
                        if r.attempt >= self.max_attempts {
                            failed_jobs.push(job.id);
                        } else {
                            // Paper policy: 1st retry prefers the same node,
                            // a 2nd failure there excludes the node.
                            let (prefer, exclude) = if r.attempt == 1 {
                                (Some(r.node), None)
                            } else {
                                (None, Some(r.node))
                            };
                            pending.push_back(Pending {
                                job_idx: r.job_idx,
                                attempt: r.attempt + 1,
                                prefer,
                                exclude,
                            });
                        }
                    } else {
                        makespan = makespan.max(t);
                        if let Some((lat, done_ctr, _, _)) = &metrics {
                            lat.record(t.saturating_sub(r.start));
                            done_ctr.incr();
                        }
                    }
                }
                Event::NodeFail { node } => {
                    if let Some((_, _, _, node_ctr)) = &metrics {
                        node_ctr.incr();
                    }
                    let ns = &mut nodes[node as usize];
                    ns.alive = false;
                    ns.free_cores.clear();
                    ns.free_gpus.clear();
                    // Kill and requeue everything running there.
                    let victims: Vec<u64> =
                        running.iter().filter(|(_, r)| r.node == node).map(|(&e, _)| e).collect();
                    for exec in victims {
                        let r = running.remove(&exec).expect("victim exists");
                        let job = &jobs[r.job_idx];
                        failures += 1;
                        if let Some((_, _, fail_ctr, _)) = &metrics {
                            fail_ctr.incr();
                        }
                        records.push(JobRecord {
                            job: job.id,
                            name: job.name.clone(),
                            node: r.node,
                            cores: r.cores,
                            gpus: r.gpus,
                            start: r.start,
                            end: t,
                            attempt: r.attempt,
                            completed: false,
                        });
                        if r.attempt >= self.max_attempts {
                            failed_jobs.push(job.id);
                        } else {
                            // The node is gone: restart elsewhere directly.
                            pending.push_back(Pending {
                                job_idx: r.job_idx,
                                attempt: r.attempt + 1,
                                prefer: None,
                                exclude: Some(node),
                            });
                        }
                    }
                }
            }
        }

        records.sort_by_key(|r| (r.start, r.node, r.cores.first().copied()));
        SimOutcome { makespan, records, failed_jobs, failures, reserved: reserved_pairs }
    }

    /// Find a node for `job` honouring preference/exclusion; allocate exact
    /// core and GPU ids on success.
    fn place(
        &self,
        job: &Job,
        p: &Pending,
        nodes: &mut [NodeState],
    ) -> Option<(u32, Vec<u32>, Vec<u32>)> {
        let fits = |ns: &NodeState| {
            ns.alive
                && ns.free_cores.len() >= job.cores as usize
                && ns.free_gpus.len() >= job.gpus as usize
        };
        let order: Vec<u32> = match p.prefer {
            Some(n) => {
                std::iter::once(n).chain((0..nodes.len() as u32).filter(move |&i| i != n)).collect()
            }
            None => (0..nodes.len() as u32).collect(),
        };
        for n in order {
            if Some(n) == p.exclude {
                continue;
            }
            let ns = &mut nodes[n as usize];
            if fits(ns) {
                let cores: Vec<u32> =
                    ns.free_cores.iter().copied().take(job.cores as usize).collect();
                for c in &cores {
                    ns.free_cores.remove(c);
                }
                let gpus: Vec<u32> = ns.free_gpus.iter().copied().take(job.gpus as usize).collect();
                for g in &gpus {
                    ns.free_gpus.remove(g);
                }
                return Some((n, cores, gpus));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;

    fn mn4(n: usize) -> Cluster {
        Cluster::homogeneous(n, NodeSpec::marenostrum4())
    }

    #[test]
    fn single_job_runs_immediately() {
        let sim = ClusterSim::new(mn4(1));
        let out = sim.run(&[Job::cpu(0, 1, 100)]);
        assert_eq!(out.makespan, 100);
        assert_eq!(out.jobs_completed(), 1);
        let r = &out.records[0];
        assert_eq!((r.start, r.end, r.node), (0, 100, 0));
        assert_eq!(r.cores.len(), 1);
    }

    #[test]
    fn jobs_queue_when_cores_exhausted() {
        // 48-core node, 49 single-core unit jobs → one must wait.
        let sim = ClusterSim::new(mn4(1));
        let jobs: Vec<Job> = (0..49).map(|i| Job::cpu(i, 1, 100)).collect();
        let out = sim.run(&jobs);
        assert_eq!(out.makespan, 200);
        assert_eq!(out.jobs_completed(), 49);
        let started_late = out.records.iter().filter(|r| r.start == 100).count();
        assert_eq!(started_late, 1);
    }

    #[test]
    fn reserved_cores_shrink_capacity() {
        // Figure 5 setup: worker takes half of a 48-core node → 24 slots.
        let sim = ClusterSim::new(mn4(1)).reserve_cores(0, 24);
        let jobs: Vec<Job> = (0..27).map(|i| Job::cpu(i, 1, 100)).collect();
        let out = sim.run(&jobs);
        let immediate = out.records.iter().filter(|r| r.start == 0).count();
        assert_eq!(immediate, 24, "exactly 24 tasks start at t=0");
        assert_eq!(out.makespan, 200, "3 stragglers run a second wave");
        // reserved cores are 0..24; no job may own one
        for r in &out.records {
            assert!(r.cores.iter().all(|&c| c >= 24), "job on reserved core: {r:?}");
        }
        assert_eq!(out.reserved.len(), 24);
    }

    #[test]
    fn affinity_sets_are_disjoint_while_overlapping_in_time() {
        let sim = ClusterSim::new(mn4(1));
        let jobs: Vec<Job> = (0..12).map(|i| Job::cpu(i, 4, 1000)).collect();
        let out = sim.run(&jobs);
        for a in &out.records {
            for b in &out.records {
                if a.job != b.job && a.node == b.node && a.start < b.end && b.start < a.end {
                    assert!(
                        a.cores.iter().all(|c| !b.cores.contains(c)),
                        "overlapping jobs share a core: {a:?} {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn multinode_28_vs_14_nodes_matches_figure6() {
        // 27 whole-node tasks with heterogeneous durations (epochs grid).
        let durations = [100u64, 250, 500];
        let jobs: Vec<Job> = (0..27)
            .map(|i| Job {
                id: i,
                name: format!("t{i}"),
                cores: 48,
                gpus: 0,
                duration_us: durations[(i % 3) as usize],
            })
            .collect();
        // 28 nodes, 1 reserved for the worker → all 27 run in parallel.
        let out28 = ClusterSim::new(mn4(28)).reserve_cores(0, 48).run(&jobs);
        assert_eq!(out28.makespan, 500, "bounded by the longest task");
        let immediate = out28.records.iter().filter(|r| r.start == 0).count();
        assert_eq!(immediate, 27);
        // 14 nodes: shorter tasks free nodes for stragglers; the paper's
        // point is that the makespan is "almost the same".
        let out14 = ClusterSim::new(mn4(14)).reserve_cores(0, 48).run(&jobs);
        assert!(out14.jobs_completed() == 27);
        assert!(out14.makespan < 2 * out28.makespan, "14-node run ≤ 2×; got {}", out14.makespan);
        assert!(out14.makespan >= out28.makespan);
    }

    #[test]
    fn gpu_jobs_respect_gpu_count() {
        // POWER9 node: 4 GPUs → at most 4 GPU jobs in flight (Fig 9's "only
        // 4 parallel tasks").
        let sim = ClusterSim::new(Cluster::homogeneous(1, NodeSpec::cte_power9()));
        let jobs: Vec<Job> = (0..8)
            .map(|i| Job { id: i, name: format!("g{i}"), cores: 10, gpus: 1, duration_us: 100 })
            .collect();
        let out = sim.run(&jobs);
        assert_eq!(out.records.iter().filter(|r| r.start == 0).count(), 4);
        assert_eq!(out.makespan, 200);
        // distinct GPU ids among concurrent jobs
        let first_wave: Vec<&JobRecord> = out.records.iter().filter(|r| r.start == 0).collect();
        let mut gpu_ids: Vec<u32> = first_wave.iter().flat_map(|r| r.gpus.clone()).collect();
        gpu_ids.sort_unstable();
        assert_eq!(gpu_ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn task_failure_retries_same_node_then_moves() {
        let inj = FailureInjector::none().with_task_failure(0, 1).with_task_failure(0, 2);
        let sim = ClusterSim::new(mn4(2)).with_failures(inj);
        let out = sim.run(&[Job::cpu(0, 1, 100)]);
        let attempts: Vec<(u32, u32, bool)> =
            out.records.iter().map(|r| (r.attempt, r.node, r.completed)).collect();
        assert_eq!(attempts.len(), 3);
        assert_eq!(attempts[0], (1, 0, false));
        assert_eq!(attempts[1], (2, 0, false), "2nd attempt: same node, fails again");
        assert_eq!(attempts[2].0, 3);
        assert_ne!(attempts[2].1, 0, "3rd attempt moves to the other node");
        assert!(attempts[2].2);
        assert_eq!(out.failures, 2);
        assert!(out.failed_jobs.is_empty());
    }

    #[test]
    fn retry_budget_exhaustion_marks_job_failed() {
        let inj = FailureInjector::none()
            .with_task_failure(0, 1)
            .with_task_failure(0, 2)
            .with_task_failure(0, 3);
        let sim = ClusterSim::new(mn4(2)).with_failures(inj);
        let out = sim.run(&[Job::cpu(0, 1, 100)]);
        assert_eq!(out.failed_jobs, vec![0]);
        assert_eq!(out.jobs_completed(), 0);
    }

    #[test]
    fn node_failure_requeues_running_jobs_elsewhere() {
        let inj = FailureInjector::none().with_node_failure(50, 0);
        let sim = ClusterSim::new(mn4(2)).with_failures(inj);
        let jobs: Vec<Job> = (0..2).map(|i| Job::cpu(i, 48, 100)).collect();
        let out = sim.run(&jobs);
        assert_eq!(out.jobs_completed(), 2, "both jobs eventually finish");
        // whichever job was on node 0 was killed at t=50 and moved to node 1
        let killed: Vec<&JobRecord> = out.records.iter().filter(|r| !r.completed).collect();
        assert_eq!(killed.len(), 1);
        assert_eq!(killed[0].end, 50);
        let resumed = out
            .records
            .iter()
            .find(|r| r.job == killed[0].job && r.completed)
            .expect("killed job reran");
        assert_eq!(resumed.node, 1);
        assert!(out.makespan >= 150);
    }

    #[test]
    fn dead_node_accepts_no_new_jobs() {
        let inj = FailureInjector::none().with_node_failure(10, 0);
        let sim = ClusterSim::new(mn4(2)).with_failures(inj);
        let jobs: Vec<Job> = (0..4).map(|i| Job::cpu(i, 48, 100)).collect();
        let out = sim.run(&jobs);
        for r in &out.records {
            assert!(!(r.node == 0 && r.start >= 10), "job placed on dead node: {r:?}");
        }
        assert_eq!(out.jobs_completed(), 4);
    }

    #[test]
    fn determinism_same_input_same_outcome() {
        let jobs: Vec<Job> =
            (0..50).map(|i| Job::cpu(i, (i % 7 + 1) as u32, 100 + i * 13)).collect();
        let sim = ClusterSim::new(mn4(3)).with_failures(FailureInjector::random(9, 0.1));
        let a = sim.run(&jobs);
        let b = sim.run(&jobs);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn global_metrics_capture_failures_and_latency() {
        // Enable the process-global registry just for this run; the counters
        // are monotonic so we assert deltas, not absolutes (other tests in
        // this binary may share the registry).
        let reg = runmetrics::global();
        let before = reg.snapshot();
        let done0 = before.counter("cluster_jobs_completed_total").unwrap_or(0);
        let fail0 = before.counter("cluster_attempt_failures_total").unwrap_or(0);
        let node0 = before.counter("cluster_node_failures_total").unwrap_or(0);
        reg.set_enabled(true);
        let inj = FailureInjector::none().with_task_failure(0, 1).with_node_failure(50, 0);
        let out = ClusterSim::new(mn4(2))
            .with_failures(inj)
            .run(&[Job::cpu(0, 1, 100), Job::cpu(1, 1, 30)]);
        reg.set_enabled(false);
        assert_eq!(out.jobs_completed(), 2);
        let after = reg.snapshot();
        assert!(after.counter("cluster_jobs_completed_total").unwrap() >= done0 + 2);
        assert!(after.counter("cluster_attempt_failures_total").unwrap() > fail0);
        assert!(after.counter("cluster_node_failures_total").unwrap() > node0);
        let lat = after.histogram("cluster_job_latency_us").expect("latency series");
        assert!(lat.count >= 2);
        assert!(lat.max >= 100);
    }

    #[test]
    fn unplaceable_job_never_blocks_others() {
        // Job 0 wants 100 cores (impossible on 48-core nodes): it stays
        // pending forever but the simulation still terminates and runs the
        // rest. This mirrors COMPSs' "tasks wait for the resources".
        let sim = ClusterSim::new(mn4(1));
        let jobs = vec![Job::cpu(0, 100, 10), Job::cpu(1, 1, 10)];
        let out = sim.run(&jobs);
        assert_eq!(out.jobs_completed(), 1);
        assert_eq!(out.makespan, 10);
    }
}
