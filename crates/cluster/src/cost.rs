//! Cost models mapping (work, resource allocation) → simulated duration.
//!
//! Absolute constants are calibrated so the paper's headline numbers land in
//! the right range (~29 min for one single-core MNIST training, ~207 min for
//! the 27-task single-node run), but the models exist to reproduce *shapes*:
//!
//! * multi-core scaling is sublinear (`α < 1`), so per-task speedup flattens;
//! * training has a fixed serial setup, so over-decomposition hurts — this
//!   plus wave effects produces Figure 9's single-node minimum at ~4 cores;
//! * GPU tasks split per-batch work into CPU preprocessing (scales with
//!   cores, never on GPU) and compute (GPU-accelerated). With one CPU core
//!   the GPU starves — the paper: "a powerful GPU with just a single core is
//!   irrelevant as it will be idle more of the time".

use crate::node::GpuModel;

/// Resources granted to one task execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Allocation {
    /// CPU computing units granted.
    pub cores: u32,
    /// GPUs granted.
    pub gpus: u32,
    /// GPU model if `gpus > 0`.
    pub gpu_model: Option<GpuModel>,
    /// Relative per-core speed of the host node (1.0 = MN4 reference).
    pub core_perf: f64,
}

impl Allocation {
    /// CPU-only allocation on a reference node.
    pub fn cpu(cores: u32) -> Self {
        Allocation { cores, gpus: 0, gpu_model: None, core_perf: 1.0 }
    }

    /// Allocation with `cores` CPUs and one GPU of `model`.
    pub fn with_gpu(cores: u32, model: GpuModel) -> Self {
        Allocation { cores, gpus: 1, gpu_model: Some(model), core_perf: 1.0 }
    }

    /// Effective parallel CPU throughput relative to one reference core,
    /// with sublinear scaling exponent `alpha`.
    pub fn cpu_throughput(&self, alpha: f64) -> f64 {
        (self.cores.max(1) as f64).powf(alpha) * self.core_perf
    }
}

/// A generic piece of work: serial part + CPU-parallel part + optional
/// GPU-accelerable part. Durations are in µs on one reference core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkProfile {
    /// Non-parallelisable time (model construction, I/O setup …).
    pub serial_us: f64,
    /// CPU-parallelisable time on one reference core.
    pub cpu_us: f64,
    /// GPU-accelerable time on one reference core. Runs on CPU if no GPU
    /// is allocated.
    pub accel_us: f64,
    /// Sublinear multi-core scaling exponent in `(0, 1]`.
    pub alpha: f64,
}

impl WorkProfile {
    /// Purely CPU-bound work.
    pub fn cpu_bound(serial_us: f64, cpu_us: f64) -> Self {
        WorkProfile { serial_us, cpu_us, accel_us: 0.0, alpha: 0.9 }
    }

    /// Simulated duration under `alloc`, in µs.
    pub fn duration(&self, alloc: &Allocation) -> u64 {
        let cpu_thr = alloc.cpu_throughput(self.alpha);
        let mut t = self.serial_us + self.cpu_us / cpu_thr;
        if self.accel_us > 0.0 {
            t += if alloc.gpus > 0 {
                let model = alloc.gpu_model.unwrap_or(GpuModel::Generic);
                self.accel_us / (model.compute_speedup() * alloc.gpus as f64)
            } else {
                self.accel_us / cpu_thr
            };
        }
        t.max(1.0) as u64
    }
}

/// Cost of one neural-network training task, the paper's unit of work.
///
/// A training runs `epochs × batches_per_epoch` batches. Every batch pays a
/// CPU-side preprocessing cost (data loading, augmentation) and a compute
/// cost (forward/backward); only the latter is GPU-accelerable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingCost {
    /// Number of epochs (a paper hyperparameter: 20/50/100).
    pub epochs: u32,
    /// Batches per epoch = ⌈dataset / batch_size⌉.
    pub batches_per_epoch: u32,
    /// Forward+backward time per batch on one reference CPU core, µs.
    pub compute_us_per_batch: f64,
    /// Preprocessing time per batch on one reference CPU core, µs.
    pub preprocess_us_per_batch: f64,
    /// Fixed per-task setup time (session + model build), µs.
    pub setup_us: f64,
    /// Multi-core scaling exponent.
    pub alpha: f64,
}

impl TrainingCost {
    /// MNIST-class training calibrated to the paper: one config
    /// (50 epochs × 1875 batches) on a single MN4 core ≈ 29 minutes
    /// (Figure 4: "the task takes around 29 mins").
    pub fn mnist(epochs: u32, batch_size: u32) -> Self {
        let batches = (60_000 + batch_size - 1) / batch_size.max(1);
        TrainingCost {
            epochs,
            batches_per_epoch: batches,
            // 29 min ≈ 50 epochs × 938 batches (batch 64) × t ⇒ t ≈ 37,100 µs
            // per batch; split ~90 % compute / 10 % preprocessing for MNIST.
            compute_us_per_batch: 33_400.0 * (batch_size as f64 / 64.0).max(0.25),
            preprocess_us_per_batch: 3_700.0 * (batch_size as f64 / 64.0).max(0.25),
            setup_us: 20.0 * 1_000_000.0,
            alpha: 0.9,
        }
    }

    /// CIFAR-10-class training: ~4× the per-batch compute of MNIST (3072-d
    /// images, bigger model) and a much heavier preprocessing share
    /// (decode + augmentation) — the preprocessing is what starves the GPU
    /// at low core counts in Figure 9 ("data preprocessing takes place in
    /// the CPU").
    pub fn cifar10(epochs: u32, batch_size: u32) -> Self {
        let batches = (50_000 + batch_size - 1) / batch_size.max(1);
        TrainingCost {
            epochs,
            batches_per_epoch: batches,
            compute_us_per_batch: 150_000.0 * (batch_size as f64 / 64.0).max(0.25),
            preprocess_us_per_batch: 18_000.0 * (batch_size as f64 / 64.0).max(0.25),
            setup_us: 10.0 * 1_000_000.0,
            alpha: 0.9,
        }
    }

    /// Total number of batches over the whole training.
    pub fn total_batches(&self) -> u64 {
        self.epochs as u64 * self.batches_per_epoch as u64
    }

    /// Simulated duration of the full training under `alloc`, µs.
    pub fn duration(&self, alloc: &Allocation) -> u64 {
        let cpu_thr = alloc.cpu_throughput(self.alpha);
        let pre = self.preprocess_us_per_batch / cpu_thr;
        let comp = if alloc.gpus > 0 {
            let model = alloc.gpu_model.unwrap_or(GpuModel::Generic);
            self.compute_us_per_batch / (model.compute_speedup() * alloc.gpus as f64)
        } else {
            self.compute_us_per_batch / cpu_thr
        };
        let per_batch = pre + comp;
        (self.setup_us + per_batch * self.total_batches() as f64).max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MINUTE;

    #[test]
    fn mnist_single_core_lands_near_29_minutes() {
        // Figure 4: one MNIST training on one core ≈ 29 min. We calibrate
        // the default config (50 epochs, batch 64) into [24, 34] minutes.
        let cost = TrainingCost::mnist(50, 64);
        let t = cost.duration(&Allocation::cpu(1));
        assert!(
            (24 * MINUTE..34 * MINUTE).contains(&t),
            "expected ≈29min, got {}",
            paratrace_fmt(t)
        );
    }

    fn paratrace_fmt(us: u64) -> String {
        format!("{:.1}min", us as f64 / MINUTE as f64)
    }

    #[test]
    fn more_cores_is_faster_but_sublinear() {
        let cost = TrainingCost::mnist(50, 64);
        let t1 = cost.duration(&Allocation::cpu(1));
        let t4 = cost.duration(&Allocation::cpu(4));
        let t48 = cost.duration(&Allocation::cpu(48));
        assert!(t4 < t1 && t48 < t4);
        let speedup = t1 as f64 / t48 as f64;
        assert!(speedup < 48.0, "sublinear: {speedup}");
        assert!(speedup > 8.0, "still substantial: {speedup}");
    }

    #[test]
    fn gpu_with_one_core_is_preprocessing_bound() {
        // Figure 9's GPU curve: with 1 core the GPU starves; adding cores
        // collapses the runtime.
        let cost = TrainingCost::cifar10(50, 64);
        let one_core = cost.duration(&Allocation::with_gpu(1, GpuModel::V100));
        let many_cores = cost.duration(&Allocation::with_gpu(40, GpuModel::V100));
        assert!(one_core > 3 * many_cores, "{one_core} vs {many_cores}");
        // and the GPU beats pure-CPU at equal core counts
        let cpu_only = cost.duration(&Allocation::cpu(40));
        assert!(many_cores < cpu_only);
    }

    #[test]
    fn epochs_scale_duration_roughly_linearly() {
        let a = TrainingCost::mnist(20, 64).duration(&Allocation::cpu(1));
        let b = TrainingCost::mnist(100, 64).duration(&Allocation::cpu(1));
        let ratio = b as f64 / a as f64;
        assert!((3.5..6.0).contains(&ratio), "100 vs 20 epochs ratio {ratio}");
    }

    #[test]
    fn larger_batch_means_fewer_batches() {
        let small = TrainingCost::mnist(10, 32);
        let large = TrainingCost::mnist(10, 128);
        assert!(small.total_batches() > large.total_batches());
        assert_eq!(small.batches_per_epoch, 1875);
        assert_eq!(large.batches_per_epoch, 469);
    }

    #[test]
    fn work_profile_generic_model() {
        let w = WorkProfile::cpu_bound(10.0, 1000.0);
        let t1 = w.duration(&Allocation::cpu(1));
        let t10 = w.duration(&Allocation::cpu(10));
        assert!(t10 < t1);
        assert!(t10 as f64 >= 10.0, "serial part is a floor");

        let g = WorkProfile { serial_us: 0.0, cpu_us: 0.0, accel_us: 1_000_000.0, alpha: 0.9 };
        let on_gpu = g.duration(&Allocation::with_gpu(1, GpuModel::V100));
        let on_cpu = g.duration(&Allocation::cpu(1));
        assert!(on_gpu < on_cpu / 10);
    }

    #[test]
    fn duration_never_zero() {
        let w = WorkProfile { serial_us: 0.0, cpu_us: 0.0, accel_us: 0.0, alpha: 0.9 };
        assert_eq!(w.duration(&Allocation::cpu(1)), 1);
    }

    #[test]
    fn core_perf_scales_throughput() {
        let mut a = Allocation::cpu(4);
        a.core_perf = 0.5;
        let slow = TrainingCost::mnist(10, 64).duration(&a);
        let fast = TrainingCost::mnist(10, 64).duration(&Allocation::cpu(4));
        assert!(slow > fast);
    }
}
