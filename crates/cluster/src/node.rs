//! Node hardware specifications, with presets for the paper's testbeds.

/// GPU model installed in a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuModel {
    /// NVIDIA Tesla K80 (MinoTauro).
    K80,
    /// NVIDIA V100 16 GB HBM2 (CTE-POWER9).
    V100,
    /// Generic GPU for synthetic topologies.
    Generic,
}

impl GpuModel {
    /// Relative training-compute speedup of this GPU versus one reference
    /// CPU core, used by [`crate::cost::TrainingCost`]. These are coarse,
    /// order-of-magnitude calibrations: the paper only needs "GPU ≫ CPU for
    /// the compute phase" to reproduce the Figure 9 shape.
    pub fn compute_speedup(&self) -> f64 {
        match self {
            GpuModel::K80 => 12.0,
            GpuModel::V100 => 40.0,
            GpuModel::Generic => 20.0,
        }
    }
}

/// Hardware description of one cluster node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Human-readable name of the node class.
    pub name: String,
    /// Number of CPU computing units exposed to the runtime. The paper
    /// counts hardware threads on POWER9 (160) and physical cores on
    /// MareNostrum 4 (48).
    pub cores: u32,
    /// GPUs installed.
    pub gpus: Vec<GpuModel>,
    /// Memory in GiB (only used for constraint matching).
    pub mem_gib: u32,
    /// Relative per-core speed versus the MareNostrum 4 Xeon Platinum
    /// reference core (1.0).
    pub core_perf: f64,
}

impl NodeSpec {
    /// Custom node.
    pub fn new(name: impl Into<String>, cores: u32, gpus: Vec<GpuModel>, mem_gib: u32) -> Self {
        NodeSpec { name: name.into(), cores, gpus, mem_gib, core_perf: 1.0 }
    }

    /// MareNostrum 4 compute node: "two Intel Xeon Platinum chips, each with
    /// 24 processors, a total of 48 per node" (paper §5).
    pub fn marenostrum4() -> Self {
        NodeSpec {
            name: "MareNostrum4".into(),
            cores: 48,
            gpus: Vec::new(),
            mem_gib: 96,
            core_perf: 1.0,
        }
    }

    /// MinoTauro GPU node: "2 K80 NVIDIA GPU Cards and 2 Intel Xeon E5-2630
    /// v3 (Haswell) 8-core processors" (paper §5). Each K80 card exposes two
    /// logical GPUs; we model the two cards as 2 schedulable GPUs, matching
    /// how the paper assigns "a single GPU" per task.
    pub fn minotauro() -> Self {
        NodeSpec {
            name: "MinoTauro".into(),
            cores: 16,
            gpus: vec![GpuModel::K80, GpuModel::K80],
            mem_gib: 128,
            core_perf: 0.8,
        }
    }

    /// CTE-POWER9 node: "2 x IBM Power9 ... total 160 threads per node and
    /// 4 x GPU NVIDIA V100 (Volta) with 16GB HBM2" (paper §5).
    pub fn cte_power9() -> Self {
        NodeSpec {
            name: "CTE-POWER9".into(),
            cores: 160,
            gpus: vec![GpuModel::V100; 4],
            mem_gib: 512,
            core_perf: 0.9,
        }
    }

    /// Number of GPUs in the node.
    pub fn gpu_count(&self) -> u32 {
        self.gpus.len() as u32
    }

    /// Whether the node can ever satisfy a `(cores, gpus, mem)` request.
    pub fn can_fit(&self, cores: u32, gpus: u32, mem_gib: u32) -> bool {
        self.cores >= cores && self.gpu_count() >= gpus && self.mem_gib >= mem_gib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_hardware() {
        let mn4 = NodeSpec::marenostrum4();
        assert_eq!(mn4.cores, 48);
        assert_eq!(mn4.gpu_count(), 0);

        let mt = NodeSpec::minotauro();
        assert_eq!(mt.cores, 16);
        assert_eq!(mt.gpu_count(), 2);
        assert!(mt.gpus.iter().all(|g| *g == GpuModel::K80));

        let p9 = NodeSpec::cte_power9();
        assert_eq!(p9.cores, 160);
        assert_eq!(p9.gpu_count(), 4);
        assert!(p9.gpus.iter().all(|g| *g == GpuModel::V100));
    }

    #[test]
    fn can_fit_checks_every_dimension() {
        let n = NodeSpec::marenostrum4();
        assert!(n.can_fit(48, 0, 96));
        assert!(!n.can_fit(49, 0, 0));
        assert!(!n.can_fit(1, 1, 0), "MN4 has no GPUs");
        assert!(!n.can_fit(1, 0, 97));
        assert!(n.can_fit(0, 0, 0));
    }

    #[test]
    fn gpu_speedups_ordered_by_generation() {
        assert!(GpuModel::V100.compute_speedup() > GpuModel::K80.compute_speedup());
        assert!(GpuModel::K80.compute_speedup() > 1.0);
    }
}
