//! Property-based tests of the DESIGN.md invariants, spanning crates.

use proptest::prelude::*;

use cluster::{Cluster, ClusterSim, FailureInjector, Job, NodeSpec};
use hpo::prelude::*;
use rcompss::{ArgSpec, Constraint, Runtime, RuntimeConfig, Value};

// ---------------------------------------------------------------------
// Sequential equivalence: any mix of pure ops over shared handles yields
// the same values on 1 core and on 8 cores (paper: the runtime guarantees
// "the same result as if executed sequentially").
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    /// new handle = a + b (handles chosen by index)
    Add(usize, usize),
    /// new handle = a * 3 + 1
    Mix(usize),
    /// accumulate into an INOUT cell (cell index 0..3)
    Accumulate(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Add(a, b)),
        (0usize..8).prop_map(Op::Mix),
        (0usize..4, 0usize..8).prop_map(|(c, v)| Op::Accumulate(c, v)),
    ]
}

fn run_program(cores: u32, ops: &[Op]) -> (Vec<i64>, Vec<i64>) {
    let rt = Runtime::threaded(RuntimeConfig::single_node(cores).with_tracing(false));
    let add = rt.register("add", Constraint::cpus(1), 1, |_, i| {
        let a: i64 = *i[0].downcast_ref::<i64>().unwrap();
        let b: i64 = *i[1].downcast_ref::<i64>().unwrap();
        Ok(vec![Value::new(a.wrapping_add(b))])
    });
    let mix = rt.register("mix", Constraint::cpus(1), 1, |_, i| {
        let a: i64 = *i[0].downcast_ref::<i64>().unwrap();
        Ok(vec![Value::new(a.wrapping_mul(3).wrapping_add(1))])
    });
    let acc = rt.register("acc", Constraint::cpus(1), 0, |_, i| {
        let cell: i64 = *i[0].downcast_ref::<i64>().unwrap();
        let v: i64 = *i[1].downcast_ref::<i64>().unwrap();
        Ok(vec![Value::new(cell.wrapping_add(v))])
    });

    // 8 value handles seeded 0..8, 4 INOUT cells seeded 100, 200, 300, 400.
    let mut handles: Vec<rcompss::DataHandle> = (0..8i64).map(|i| rt.literal(i)).collect();
    let cells: Vec<rcompss::DataHandle> = (1..=4i64).map(|i| rt.literal(i * 100)).collect();

    for op in ops {
        match op {
            Op::Add(a, b) => {
                let out = rt
                    .submit(&add, vec![ArgSpec::In(handles[*a]), ArgSpec::In(handles[*b])])
                    .unwrap()
                    .returns[0];
                handles.push(out);
            }
            Op::Mix(a) => {
                let out = rt.submit(&mix, vec![ArgSpec::In(handles[*a])]).unwrap().returns[0];
                handles.push(out);
            }
            Op::Accumulate(c, v) => {
                rt.submit(&acc, vec![ArgSpec::InOut(cells[*c]), ArgSpec::In(handles[*v])]).unwrap();
            }
        }
        // keep the live set bounded
        if handles.len() > 16 {
            handles.drain(0..4);
        }
    }
    let finals: Vec<i64> =
        handles.iter().map(|h| *rt.wait_on(h).unwrap().downcast_ref::<i64>().unwrap()).collect();
    let cell_vals: Vec<i64> =
        cells.iter().map(|h| *rt.wait_on(h).unwrap().downcast_ref::<i64>().unwrap()).collect();
    (finals, cell_vals)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn parallel_execution_is_sequentially_equivalent(ops in prop::collection::vec(op_strategy(), 1..24)) {
        let sequential = run_program(1, &ops);
        let parallel = run_program(8, &ops);
        prop_assert_eq!(sequential, parallel);
    }
}

// ---------------------------------------------------------------------
// Scheduling invariants on the rigid-job simulator.
// ---------------------------------------------------------------------

fn job_strategy() -> impl Strategy<Value = (u32, u64)> {
    (1u32..16, 1u64..5_000)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn no_core_oversubscription_and_makespan_bounds(
        specs in prop::collection::vec(job_strategy(), 1..60),
        nodes in 1usize..4,
    ) {
        let cluster = Cluster::homogeneous(nodes, NodeSpec::new("n", 16, vec![], 32));
        let jobs: Vec<Job> = specs
            .iter()
            .enumerate()
            .map(|(i, &(cores, dur))| Job::cpu(i as u64, cores, dur))
            .collect();
        let out = ClusterSim::new(cluster).run(&jobs);
        prop_assert_eq!(out.jobs_completed(), jobs.len());

        // (1) affinity: overlapping records on one node never share a core
        for a in &out.records {
            for b in &out.records {
                if (a.job, a.attempt) != (b.job, b.attempt)
                    && a.node == b.node
                    && a.start < b.end
                    && b.start < a.end
                {
                    prop_assert!(a.cores.iter().all(|c| !b.cores.contains(c)),
                        "core shared: {:?} vs {:?}", a, b);
                }
            }
        }
        // (2) per-instant core usage ≤ capacity (checked at every start)
        for probe in out.records.iter().map(|r| r.start) {
            for node in 0..nodes as u32 {
                let used: u32 = out
                    .records
                    .iter()
                    .filter(|r| r.node == node && r.start <= probe && probe < r.end)
                    .map(|r| r.cores.len() as u32)
                    .sum();
                prop_assert!(used <= 16, "node {node} oversubscribed at t={probe}: {used}");
            }
        }
        // (3) makespan bounds
        let longest = jobs.iter().map(|j| j.duration_us).max().unwrap();
        let total_work: u64 = jobs.iter().map(|j| j.duration_us * j.cores as u64).sum();
        let capacity = (nodes * 16) as u64;
        prop_assert!(out.makespan >= longest);
        prop_assert!(out.makespan >= total_work / capacity);
        let serial: u64 = jobs.iter().map(|j| j.duration_us).sum();
        prop_assert!(out.makespan <= serial, "worse than fully serial");
    }

    #[test]
    fn simulation_is_deterministic_under_failures(
        specs in prop::collection::vec(job_strategy(), 1..40),
        seed in 0u64..1_000,
    ) {
        let jobs: Vec<Job> = specs
            .iter()
            .enumerate()
            .map(|(i, &(cores, dur))| Job::cpu(i as u64, cores, dur))
            .collect();
        let sim = ClusterSim::new(Cluster::homogeneous(3, NodeSpec::new("n", 16, vec![], 32)))
            .with_failures(FailureInjector::random(seed, 0.15));
        let a = sim.run(&jobs);
        let b = sim.run(&jobs);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.records, b.records);
        prop_assert_eq!(a.failed_jobs, b.failed_jobs);
    }

    #[test]
    fn forced_failures_below_budget_never_lose_jobs(
        specs in prop::collection::vec(job_strategy(), 1..20),
        failing_attempts in prop::collection::vec((0u64..20, 1u32..3), 0..8),
    ) {
        let jobs: Vec<Job> = specs
            .iter()
            .enumerate()
            .map(|(i, &(cores, dur))| Job::cpu(i as u64, cores, dur))
            .collect();
        let mut inj = FailureInjector::none();
        for &(job, attempt) in &failing_attempts {
            // attempts 1..3 only — the default budget is 3, so success is
            // always possible on some attempt
            inj = inj.with_task_failure(job % jobs.len() as u64, attempt);
        }
        let sim = ClusterSim::new(Cluster::homogeneous(2, NodeSpec::new("n", 16, vec![], 32)))
            .with_failures(inj);
        let out = sim.run(&jobs);
        prop_assert_eq!(out.jobs_completed(), jobs.len());
        prop_assert!(out.failed_jobs.is_empty());
    }
}

// ---------------------------------------------------------------------
// Search-space invariants.
// ---------------------------------------------------------------------

fn domain_strategy() -> impl Strategy<Value = ParamDomain> {
    // Choice lists use sets: duplicate values in a choice list would make
    // "no duplicate configs" unfalsifiable by construction.
    prop_oneof![
        prop::collection::btree_set(-50i64..50, 1..5)
            .prop_map(|vs| ParamDomain::Choice(vs.into_iter().map(ConfigValue::Int).collect())),
        (0i64..10, 1i64..5, 1i64..4).prop_map(|(min, span, step)| ParamDomain::IntRange {
            min,
            max: min + span * step,
            step,
        }),
        prop::collection::btree_set("[a-z]{1,6}", 1..4)
            .prop_map(|ss| { ParamDomain::Choice(ss.into_iter().map(ConfigValue::Str).collect()) }),
    ]
}

fn space_strategy() -> impl Strategy<Value = SearchSpace> {
    prop::collection::btree_map("[a-z]{1,8}", domain_strategy(), 1..4).prop_map(|m| {
        let mut s = SearchSpace::new();
        for (k, d) in m {
            s = s.with(&k, d);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn grid_enumerates_exactly_the_product(space in space_strategy()) {
        let expected = space.grid_size().unwrap();
        let mut g = GridSearch::new(&space);
        let mut labels = std::collections::BTreeSet::new();
        let mut n = 0usize;
        while let Some(cfg) = g.suggest(&[]) {
            prop_assert!(space.contains(&cfg), "escaped: {}", cfg.label());
            labels.insert(cfg.label());
            n += 1;
        }
        prop_assert_eq!(n, expected, "grid size");
        prop_assert_eq!(labels.len(), expected, "no duplicates");
    }

    #[test]
    fn random_and_tpe_sample_inside_space(space in space_strategy(), seed in 0u64..500) {
        let mut r = RandomSearch::new(&space, 20, seed);
        while let Some(cfg) = r.suggest(&[]) {
            prop_assert!(space.contains(&cfg));
        }
        let mut t = TpeSearch::new(&space, 10, seed);
        let mut hist = Vec::new();
        while let Some(cfg) = t.suggest(&hist) {
            prop_assert!(space.contains(&cfg));
            let acc = (cfg.label().len() % 10) as f64 / 10.0;
            hist.push(hpo::results::TrialResult {
                config: cfg,
                outcome: hpo::experiment::TrialOutcome::with_accuracy(acc),
                task_us: 0,
            });
        }
    }

    #[test]
    fn spaces_roundtrip_through_json(space in space_strategy()) {
        // serialise by hand (the library deliberately has no JSON writer —
        // configs are inputs, not outputs)
        let mut json = String::from("{");
        for (i, (name, domain)) in space.params().iter().enumerate() {
            if i > 0 { json.push(','); }
            match domain {
                ParamDomain::Choice(vals) => {
                    let items: Vec<String> = vals
                        .iter()
                        .map(|v| match v {
                            ConfigValue::Int(x) => x.to_string(),
                            ConfigValue::Float(x) => format!("{x:?}"),
                            ConfigValue::Str(s) => format!("\"{s}\""),
                        })
                        .collect();
                    json.push_str(&format!("\"{name}\": [{}]", items.join(",")));
                }
                ParamDomain::IntRange { min, max, step } => {
                    json.push_str(&format!("\"{name}\": {{\"int_range\": [{min}, {max}, {step}]}}"));
                }
                _ => unreachable!("strategy emits discrete domains only"),
            }
        }
        json.push('}');
        let parsed = SearchSpace::from_json(&json).unwrap();
        // BTreeMap ordering on both sides ⇒ exact equality
        prop_assert_eq!(&parsed, &space);
    }
}

// ---------------------------------------------------------------------
// Trace statistics invariants on real runtime traces.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn sim_trace_busy_time_is_conserved(durations in prop::collection::vec(100u64..5_000, 1..30)) {
        let rt = Runtime::simulated(RuntimeConfig::single_node(8));
        let t = rt.register("t", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(())]));
        for &d in &durations {
            rt.submit_with(&t, vec![], rcompss::SubmitOpts { sim_duration_us: Some(d) }).unwrap();
        }
        rt.barrier();
        let stats = paratrace::TraceStats::compute(&rt.trace());
        // every task runs exactly once for exactly its duration
        prop_assert_eq!(stats.total_busy, durations.iter().sum::<u64>());
        prop_assert_eq!(stats.tasks_run, durations.len());
        prop_assert!(stats.peak_parallelism <= 8);
        prop_assert!(stats.makespan >= *durations.iter().max().unwrap());
    }
}

// ---------------------------------------------------------------------
// Backend equivalence: the threaded and the simulated backend are two
// executions of the same program and must agree on every value.
// ---------------------------------------------------------------------

fn run_program_simulated(ops: &[Op]) -> (Vec<i64>, Vec<i64>) {
    let rt = Runtime::simulated(RuntimeConfig::single_node(8).with_tracing(false));
    let add = rt.register("add", Constraint::cpus(1), 1, |_, i| {
        let a: i64 = *i[0].downcast_ref::<i64>().unwrap();
        let b: i64 = *i[1].downcast_ref::<i64>().unwrap();
        Ok(vec![Value::new(a.wrapping_add(b))])
    });
    let mix = rt.register("mix", Constraint::cpus(1), 1, |_, i| {
        let a: i64 = *i[0].downcast_ref::<i64>().unwrap();
        Ok(vec![Value::new(a.wrapping_mul(3).wrapping_add(1))])
    });
    let acc = rt.register("acc", Constraint::cpus(1), 0, |_, i| {
        let cell: i64 = *i[0].downcast_ref::<i64>().unwrap();
        let v: i64 = *i[1].downcast_ref::<i64>().unwrap();
        Ok(vec![Value::new(cell.wrapping_add(v))])
    });
    let mut handles: Vec<rcompss::DataHandle> = (0..8i64).map(|i| rt.literal(i)).collect();
    let cells: Vec<rcompss::DataHandle> = (1..=4i64).map(|i| rt.literal(i * 100)).collect();
    for op in ops {
        match op {
            Op::Add(a, b) => {
                let out = rt
                    .submit(&add, vec![ArgSpec::In(handles[*a]), ArgSpec::In(handles[*b])])
                    .unwrap()
                    .returns[0];
                handles.push(out);
            }
            Op::Mix(a) => {
                let out = rt.submit(&mix, vec![ArgSpec::In(handles[*a])]).unwrap().returns[0];
                handles.push(out);
            }
            Op::Accumulate(c, v) => {
                rt.submit(&acc, vec![ArgSpec::InOut(cells[*c]), ArgSpec::In(handles[*v])]).unwrap();
            }
        }
        if handles.len() > 16 {
            handles.drain(0..4);
        }
    }
    let finals: Vec<i64> =
        handles.iter().map(|h| *rt.wait_on(h).unwrap().downcast_ref::<i64>().unwrap()).collect();
    let cell_vals: Vec<i64> =
        cells.iter().map(|h| *rt.wait_on(h).unwrap().downcast_ref::<i64>().unwrap()).collect();
    (finals, cell_vals)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn threaded_and_simulated_backends_agree(ops in prop::collection::vec(op_strategy(), 1..24)) {
        let threaded = run_program(4, &ops);
        let simulated = run_program_simulated(&ops);
        prop_assert_eq!(threaded, simulated);
    }
}

// ---------------------------------------------------------------------
// Intra-task kernel equivalence: the blocked, multi-threaded GEMM and
// im2col convolution produce the same numbers as their serial execution
// (bit-for-bit — stronger than the 1e-5 the docs promise) and stay within
// f32 accumulation error of an f64 naive reference, for arbitrary shapes
// (including degenerate 1×N / N×1 / k=1) and thread counts.
// ---------------------------------------------------------------------

/// Naive f64 reference for `a (m×k) · b (k×n)`.
fn naive_gemm_f64(a: &tinyml::Matrix, b: &tinyml::Matrix) -> Vec<f64> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += a.get(i, p) as f64 * b.get(p, j) as f64;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

fn test_matrix(rows: usize, cols: usize, salt: u64) -> tinyml::Matrix {
    tinyml::Matrix::from_fn(rows, cols, |r, c| {
        (((r * 31 + c * 7) as f32 + salt as f32) * 0.7).sin() * 0.5
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn parallel_gemm_matches_serial_for_random_shapes(
        m in 1usize..48,
        k in 1usize..800,
        n in 1usize..48,
        threads in 1usize..9,
        salt in 0u64..32,
    ) {
        use tinyml::par::with_threads;
        let a = test_matrix(m, k, salt);
        let b = test_matrix(k, n, salt + 1);

        let serial = with_threads(1, || a.matmul(&b));
        let parallel = with_threads(threads, || a.matmul(&b));
        prop_assert_eq!(&serial, &parallel, "GEMM must be bit-identical at any thread count");

        // And the blocked kernel itself is right: compare to f64 naive.
        let reference = naive_gemm_f64(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let got = serial.get(i, j) as f64;
                let want = reference[i * n + j];
                prop_assert!(
                    (got - want).abs() <= 1e-3 * (1.0 + want.abs()),
                    "({i},{j}): blocked {got} vs naive {want} for {m}x{k}x{n}"
                );
            }
        }

        // The transposed variants feed backprop — same guarantee.
        let bt = test_matrix(n, k, salt + 2);
        prop_assert_eq!(
            with_threads(1, || a.matmul_t(&bt)),
            with_threads(threads, || a.matmul_t(&bt))
        );
        let at = test_matrix(k, m, salt + 3);
        prop_assert_eq!(
            with_threads(1, || at.t_matmul(&b)),
            with_threads(threads, || at.t_matmul(&b))
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn parallel_conv_matches_serial_for_random_shapes(
        batch in 1usize..4,
        in_c in 1usize..3,
        out_c in 1usize..5,
        hw in 4usize..10,
        k_is_3 in any::<bool>(),
        pad in 0usize..2,
        threads in 1usize..9,
        seed in 0u64..64,
    ) {
        use tinyml::conv::{Conv2d, Tensor4};
        use tinyml::par::with_threads;
        let k = if k_is_3 { 3 } else { 1 };
        let layer = Conv2d::new(in_c, out_c, k, pad, seed);
        let mut x = Tensor4::zeros(batch, in_c, hw, hw);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as f32 + seed as f32) * 0.37).sin();
        }

        let y1 = with_threads(1, || layer.forward(&x));
        let yt = with_threads(threads, || layer.forward(&x));
        prop_assert_eq!(y1.as_slice(), yt.as_slice(), "conv forward bit-identical");

        let (dw1, db1, dx1) = with_threads(1, || layer.backward(&x, &y1));
        let (dwt, dbt, dxt) = with_threads(threads, || layer.backward(&x, &y1));
        prop_assert_eq!(&dw1, &dwt, "dw bit-identical");
        prop_assert_eq!(&db1, &dbt, "db bit-identical");
        prop_assert_eq!(dx1.as_slice(), dxt.as_slice(), "dx bit-identical");
    }
}
