//! Cross-crate integration tests: the full paper workflow from JSON config
//! to report, on both backends.

use std::sync::Arc;

use cluster::{Allocation, Cluster, NodeSpec, TrainingCost};
use hpo::prelude::*;
use paratrace::TraceStats;
use rcompss::{Constraint, Runtime, RuntimeConfig};
use tinyml::Dataset;

/// The complete Listing-2 pipeline with real training, on the threaded
/// backend: JSON → grid → parallel tasks → report.
#[test]
fn json_to_report_with_real_training() {
    let space = SearchSpace::from_json(
        r#"{
            "optimizer": ["Adam", "SGD"],
            "num_epochs": [2, 4],
            "batch_size": [64]
        }"#,
    )
    .unwrap();
    let rt = Runtime::threaded(RuntimeConfig::single_node(4));
    let data = Arc::new(Dataset::synthetic_mnist(600, 5));
    let objective = hpo::experiment::tinyml_objective(data, vec![16]);
    let report = HpoRunner::new(ExperimentOptions::default())
        .run(&rt, &mut GridSearch::new(&space), objective)
        .unwrap();

    assert_eq!(report.trials.len(), 4);
    assert_eq!(report.failures(), 0);
    let best = report.best().unwrap();
    assert!(best.outcome.accuracy > 0.5, "training actually learned: {}", best.outcome.accuracy);
    // curves exist for the figures
    assert!(report.trials.iter().all(|t| !t.outcome.epoch_accuracy.is_empty()));
    // csv and ascii renderings don't panic and mention the data
    assert!(report.to_csv().contains("optimizer=Adam"));
    assert!(report.ascii_curves(60, 12).contains("epochs"));
}

/// The same HPO application, unchanged, on the simulated MareNostrum — the
/// paper's "scaling from a single node to multiple nodes is seamless".
#[test]
fn same_app_runs_on_simulated_supercomputer() {
    let space = SearchSpace::paper_grid();
    let cluster = Cluster::homogeneous(28, NodeSpec::marenostrum4());
    let rt = Runtime::simulated(RuntimeConfig::on_cluster(cluster).reserve(0, 48));
    let objective: hpo::experiment::Objective =
        Arc::new(|_, _| Ok(hpo::experiment::TrialOutcome::with_accuracy(0.9)));
    let runner = HpoRunner::new(
        ExperimentOptions::default().with_constraint(Constraint::cpus(48)).with_sim_duration(
            |config| {
                let epochs = config.get_int("num_epochs").unwrap() as u32;
                let batch = config.get_int("batch_size").unwrap() as u32;
                TrainingCost::cifar10(epochs, batch).duration(&Allocation::cpu(48))
            },
        ),
    );
    let report = runner.run(&rt, &mut GridSearch::new(&space), objective).unwrap();
    assert_eq!(report.trials.len(), 27);

    let records = rt.trace();
    let stats = TraceStats::compute(&records);
    assert_eq!(stats.tasks_run, 27);
    assert_eq!(TraceStats::tasks_started_within(&records, 0), 27, "27 free nodes, all parallel");
    // node 0 is the worker's: no task core belongs to it
    assert!(records.iter().all(|r| r.running_task().is_none() || r.core().node != 0));
    // the makespan equals the longest single training (full parallelism)
    let longest = SearchSpace::paper_grid();
    let _ = longest;
    assert!(stats.makespan > 0);
}

/// Early stopping end to end: easy dataset + accuracy target stops both
/// within trials and across waves.
#[test]
fn early_stopping_end_to_end() {
    let space = SearchSpace::from_json(
        r#"{"optimizer": ["Adam"], "num_epochs": [30], "batch_size": [32, 64, 128]}"#,
    )
    .unwrap();
    let rt = Runtime::threaded(RuntimeConfig::single_node(2));
    let data = Arc::new(Dataset::synthetic_mnist(800, 8));
    let es = EarlyStop::at_accuracy(0.80);
    let objective = hpo::experiment::tinyml_objective_with_early_stop(data, vec![32], Some(es));
    let mut opts = ExperimentOptions::default().with_early_stop(es);
    opts.wave_size = Some(1);
    let report = HpoRunner::new(opts).run(&rt, &mut GridSearch::new(&space), objective).unwrap();
    assert!(report.early_stopped, "target was reachable");
    assert!(report.trials.len() < 3, "later waves skipped");
    let t = &report.trials[0];
    assert!(t.outcome.epochs_run < 30, "within-trial stop at epoch {}", t.outcome.epochs_run);
    assert!(t.outcome.accuracy >= 0.80);
}

/// The PRV export of a simulated run is loadable-shaped: header + records
/// referencing only cpus declared in the .row file.
#[test]
fn prv_export_is_consistent() {
    let rt = Runtime::simulated(RuntimeConfig::on_cluster(Cluster::homogeneous(
        2,
        NodeSpec::new("n", 4, vec![], 8),
    )));
    let t = rt.register("t", Constraint::cpus(2), 1, |_, _| Ok(vec![rcompss::Value::new(())]));
    for _ in 0..6 {
        rt.submit_with(&t, vec![], rcompss::SubmitOpts { sim_duration_us: Some(500) }).unwrap();
    }
    rt.barrier();
    let records = rt.trace();
    let prv = paratrace::prv::export("itest", &records);
    assert!(prv.prv.starts_with("#Paraver"));
    let n_cpus: usize = prv
        .row
        .lines()
        .next()
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|n| n.parse().ok())
        .unwrap();
    for line in prv.prv.lines().skip(2) {
        let mut parts = line.split(':');
        let kind = parts.next().unwrap();
        let cpu: usize = parts.next().unwrap().parse().unwrap();
        assert!(cpu >= 1 && cpu <= n_cpus, "record cpu {cpu} outside .row ({n_cpus}): {line}");
        assert!(kind == "1" || kind == "2");
    }
}

/// Runtime statistics agree with the report across the stack.
#[test]
fn stats_and_report_agree() {
    let rt = Runtime::threaded(RuntimeConfig::single_node(4));
    let space = SearchSpace::from_json(r#"{"num_epochs": [1, 2, 3]}"#).unwrap();
    let data = Arc::new(Dataset::synthetic_mnist(300, 2));
    let objective = hpo::experiment::tinyml_objective(data, vec![8]);
    let report = HpoRunner::new(ExperimentOptions::default())
        .run(&rt, &mut GridSearch::new(&space), objective)
        .unwrap();
    let stats = rt.stats();
    assert_eq!(stats.submitted as usize, report.trials.len());
    assert_eq!(stats.completed as usize, report.successes());
    assert_eq!(stats.failed as usize, report.failures());
}

/// tinyml difficulty ordering survives the full pipeline: the same grid
/// scores higher on MNIST-like than CIFAR-like data (Figures 7 vs 8).
#[test]
fn mnist_beats_cifar_through_the_pipeline() {
    let space =
        SearchSpace::from_json(r#"{"optimizer": ["Adam"], "num_epochs": [4], "batch_size": [64]}"#)
            .unwrap();
    let run = |data: Arc<Dataset>| {
        let rt = Runtime::threaded(RuntimeConfig::single_node(2));
        let objective = hpo::experiment::tinyml_objective(data, vec![32]);
        HpoRunner::new(ExperimentOptions::default())
            .run(&rt, &mut GridSearch::new(&space), objective)
            .unwrap()
            .best()
            .unwrap()
            .outcome
            .accuracy
    };
    let mnist = run(Arc::new(Dataset::synthetic_mnist(700, 3)));
    let cifar = run(Arc::new(Dataset::synthetic_cifar10(700, 3)));
    assert!(mnist > cifar, "mnist {mnist:.3} vs cifar {cifar:.3}");
}

/// CNN experiments through the full HPO pipeline — the paper's model class.
#[test]
fn cnn_grid_search_end_to_end() {
    use tinyml::data::SyntheticSpec;
    let space = SearchSpace::from_json(
        r#"{
            "arch": ["cnn"],
            "optimizer": ["Adam"],
            "num_epochs": [3],
            "batch_size": [32],
            "learning_rate": [0.003],
            "conv1_channels": [4, 6]
        }"#,
    )
    .unwrap();
    let rt = Runtime::threaded(RuntimeConfig::single_node(2));
    let data =
        Arc::new(Dataset::synthetic("mnist-spatial", 400, &SyntheticSpec::mnist_like_spatial(), 7));
    let objective = hpo::experiment::tinyml_objective(data, vec![16]);
    let report = HpoRunner::new(ExperimentOptions::default())
        .run(&rt, &mut GridSearch::new(&space), objective)
        .unwrap();
    assert_eq!(report.trials.len(), 2);
    assert_eq!(report.failures(), 0);
    for t in &report.trials {
        assert_eq!(t.outcome.epochs_run, 3);
        assert!(t.outcome.accuracy > 0.1, "{}", t.label());
    }
}

/// The observability path end to end: a grid-search HPO run with metrics
/// enabled exports every headline series through both exporters, and the
/// trace doubles as a Chrome `trace_event` file.
#[test]
fn metrics_export_covers_the_headline_series() {
    let space = SearchSpace::from_json(
        r#"{"optimizer": ["Adam", "SGD"], "num_epochs": [1, 2], "batch_size": [32]}"#,
    )
    .unwrap();
    let rt = Runtime::threaded(RuntimeConfig::single_node(4).with_tracing(true));
    assert!(rt.metrics_enabled(), "metrics default to on");
    let data = Arc::new(Dataset::synthetic_mnist(300, 9));
    let objective = hpo::experiment::tinyml_objective(data, vec![8]);
    let report = HpoRunner::new(ExperimentOptions::default())
        .run(&rt, &mut GridSearch::new(&space), objective)
        .unwrap();
    assert_eq!(report.trials.len(), 4);

    let snap = rt.metrics().snapshot();
    let prom = runmetrics::to_prometheus(&snap);
    for series in [
        "rcompss_task_latency_us{fn=",
        "rcompss_ready_queue_depth",
        "rcompss_sched_decision_us",
        "rcompss_tasks_retried_total",
        "hpo_trials_completed_total",
        "hpo_trials_failed_total",
    ] {
        assert!(prom.contains(series), "missing {series} in:\n{prom}");
    }
    assert_eq!(snap.counter("hpo_trials_completed_total"), Some(4));
    assert_eq!(snap.counter("rcompss_tasks_completed_total"), Some(4));

    // JSON-lines round-trips the same snapshot.
    let line = runmetrics::to_jsonl_line(rt.now_us(), &snap);
    let (_, parsed) = runmetrics::from_jsonl_line(&line).unwrap();
    assert_eq!(parsed.counter("rcompss_tasks_completed_total"), Some(4));

    // The same run's trace exports as Chrome trace_event JSON.
    let chrome = paratrace::chrome::export("e2e", &rt.trace());
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("graph.experiment"));
}

/// The Bayesian optimiser works through the runner as well.
#[test]
fn bayes_runs_through_the_runner() {
    let space =
        SearchSpace::from_json(r#"{"num_epochs": [1, 2], "batch_size": [32, 64]}"#).unwrap();
    let rt = Runtime::threaded(RuntimeConfig::single_node(2));
    let data = Arc::new(Dataset::synthetic_mnist(300, 1));
    let objective = hpo::experiment::tinyml_objective(data, vec![8]);
    let report = HpoRunner::new(ExperimentOptions::default())
        .run(&rt, &mut BayesSearch::new(&space, 6, 3), objective)
        .unwrap();
    assert_eq!(report.trials.len(), 6);
    assert_eq!(report.algorithm, "bayes-gp");
}
