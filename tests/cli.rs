//! End-to-end tests of the `hpo-run` launcher binary (the `runcompss`
//! analogue), exercised as a real subprocess.

use std::process::Command;

fn hpo_run() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hpo-run"))
}

fn write_space(name: &str, body: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hpo-cli-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path
}

const SMALL_SPACE: &str = r#"{
    "optimizer": ["Adam", "SGD"],
    "num_epochs": [1, 2],
    "batch_size": [64]
}"#;

#[test]
fn grid_run_produces_leaderboard_and_csv() {
    let space = write_space("space.json", SMALL_SPACE);
    let csv = space.with_file_name("out.csv");
    let output = hpo_run()
        .args(["--config", space.to_str().unwrap()])
        .args(["--samples", "300"])
        .args(["--out", csv.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    assert!(stdout.contains("grid: 4 trials"), "{stdout}");
    assert!(stdout.contains("top 4 of 4 trials"), "{stdout}");
    assert!(stdout.contains("new best"), "dashboard lines stream: {stdout}");
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert_eq!(csv_text.lines().count(), 5, "header + 4 rows");
}

#[test]
fn sim_backend_and_trace_flags_work() {
    let space = write_space("space2.json", SMALL_SPACE);
    let dot = space.with_file_name("graph.dot");
    let output = hpo_run()
        .args(["--config", space.to_str().unwrap()])
        .args(["--backend", "sim", "--nodes", "2", "--cores-per-task", "48"])
        .args(["--trace", "--graph", dot.to_str().unwrap()])
        .args(["--samples", "200"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    assert!(stdout.contains("trace:"), "{stdout}");
    assert!(stdout.contains("graph.experiment"), "profile table present: {stdout}");
    let dot_text = std::fs::read_to_string(&dot).unwrap();
    assert!(dot_text.contains("digraph compss"));
}

#[test]
fn random_with_target_accuracy_early_stops() {
    let space = write_space("space3.json", r#"{"num_epochs": [3], "batch_size": [32, 64, 128]}"#);
    let output = hpo_run()
        .args(["--config", space.to_str().unwrap()])
        .args(["--algo", "random", "--trials", "12", "--samples", "600"])
        .args(["--target-accuracy", "0.5", "--seed", "5"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success());
    assert!(stdout.contains("early-stopped"), "{stdout}");
}

#[test]
fn checkpointed_run_can_be_resumed_without_rerunning_trials() {
    let space = write_space("space4.json", SMALL_SPACE);
    let ckpt_dir = space.with_file_name("ckpts");
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    // First run: checkpoint everything. All 4 trials complete, so the
    // journal records 4 finished trials.
    let output = hpo_run()
        .args(["--config", space.to_str().unwrap()])
        .args(["--samples", "300"])
        .args(["--ckpt-dir", ckpt_dir.to_str().unwrap(), "--ckpt-every", "1"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    assert!(stdout.contains("checkpointing to"), "{stdout}");
    assert!(stdout.contains("grid: 4 trials"), "{stdout}");
    assert!(ckpt_dir.join("sweep.journal").is_file(), "journal written");

    // Second run resumes: every trial replays from the journal, nothing
    // retrains, and the resume banner reports it.
    let output = hpo_run()
        .args(["--config", space.to_str().unwrap()])
        .args(["--samples", "300"])
        .args(["--resume", ckpt_dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    assert!(stdout.contains("recovered journal"), "{stdout}");
    assert!(stdout.contains("4 trials complete, 0 in flight"), "{stdout}");
    assert!(stdout.contains("resumed sweep: 4 complete, 0 re-enqueued"), "{stdout}");
    assert!(stdout.contains("grid: 4 trials"), "{stdout}");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn bad_flags_fail_with_usage() {
    let out = hpo_run().args(["--nope"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("USAGE"), "{err}");

    let out = hpo_run().args(["--config", "/definitely/not/here.json"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn malformed_json_is_reported() {
    let space = write_space("bad.json", "{broken");
    let out = hpo_run().args(["--config", space.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("JSON error"));
}
