#!/usr/bin/env bash
# Repo CI gate: style, lints, and the tier-1 build+test cycle.
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # style + lints only (skip the release build & tests)
#
# Lints run on the crates this repo actively grows (tinyml, rcompss, hpo,
# hpo-bench) plus the workspace root; tier-1 is the ROADMAP.md contract:
# `cargo build --release && cargo test -q`.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy -p tinyml -p rcompss -p hpo -p hpo-bench --all-targets -- -D warnings

if [[ "${1:-}" == "quick" ]]; then
    echo "ci.sh: quick mode — skipping tier-1 build and tests"
    exit 0
fi

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "ci.sh: all green"
