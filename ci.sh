#!/usr/bin/env bash
# Repo CI gate: style, lints, and the tier-1 build+test cycle.
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # style + lints only (skip the release build & tests)
#
# Lints run on the crates this repo actively grows (tinyml, rcompss, hpo,
# hpo-bench, runmetrics, paratrace, cluster) plus the workspace root;
# tier-1 is the ROADMAP.md contract:
# `cargo build --release && cargo test -q`.
# The overhead bench runs in smoke mode as a regression guard on the
# metrics disabled hot path (must stay ~one relaxed atomic load), and the
# runtime-throughput bench runs in smoke mode as a tasks/sec gate (fails on
# a >20% regression vs crates/bench/baselines/runtime_throughput.json;
# regenerate with `runtime_throughput rebaseline` after intentional
# scheduler changes).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy -p tinyml -p rcompss -p hpo -p hpo-bench -p runmetrics -p paratrace -p cluster --all-targets -- -D warnings

if [[ "${1:-}" == "quick" ]]; then
    echo "ci.sh: quick mode — skipping tier-1 build and tests"
    exit 0
fi

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> overhead bench (smoke): disabled-path regression guard"
cargo run --release -p hpo-bench --bin overhead_tracing -- smoke

echo "==> runtime throughput (smoke): tasks/sec regression gate"
cargo run --release -p hpo-bench --bin runtime_throughput -- smoke

echo "ci.sh: all green"
