#!/usr/bin/env bash
# Repo CI gate: style, lints, and the tier-1 build+test cycle.
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # style + lints only (skip the release build & tests)
#
# Lints run on the crates this repo actively grows (tinyml, rcompss, hpo,
# hpo-bench, rnet, runmetrics, paratrace, cluster) plus the workspace root,
# and rustdoc must build warning-free across the workspace
# (RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace);
# tier-1 is the ROADMAP.md contract:
# `cargo build --release && cargo test -q`.
# The overhead bench runs in smoke mode as a regression guard on the
# metrics disabled hot path (must stay ~one relaxed atomic load), and the
# runtime-throughput bench runs in smoke + net_throughput modes as
# tasks/sec gates — threaded churn and loopback-TCP distributed churn
# respectively (fail on a >20% regression vs
# crates/bench/baselines/runtime_throughput.json that persists across
# four re-measurements — transient slow windows on a shared box don't
# flake the gate; regenerate with
# `runtime_throughput rebaseline` after intentional scheduler or wire
# changes). The checkpoint-overhead bench gates the snapshot cost the
# same way (baselines/ckpt_overhead.json, `ckpt_overhead rebaseline`
# after intentional snapshot-format or store changes). The stage-tree
# savings bench gates prefix dedup exactly (deterministic epoch counts vs
# baselines/stagetree_savings.json), and the stage-tree smoke reruns the
# loopback grid with --share-prefixes: the trial table must not change
# and the metrics exposition must show hpo_stage_epochs_saved_total > 0.
# The block-cache
# smoke exercises the content-addressed data plane end to end: hit-rate,
# bytes-on-wire bound, threaded-vs-distributed bit-identity, and
# re-fetch after a worker kill.
# Finally a distributed loopback smoke boots two rcompss-worker
# daemons and checks a distributed grid search returns the exact per-trial
# accuracies of the same run on the threaded backend; the telemetry smoke
# re-runs a sweep with --status-addr on the driver and workers, scrapes
# GET /metrics live over bash's /dev/tcp, validates the exposition with
# prom-check, and diffs the merged-trace execution-span count against the
# trial CSV. The sweep-server smoke boots a long-lived rcompss-server with
# two dial-in workers, submits a sweep over the client CLI, and checks the
# served leaderboard matches the standalone run and the hposerver_ metric
# family scrapes clean.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy -p tinyml -p rcompss -p hpo -p hpo-bench -p rnet -p runmetrics -p paratrace -p cluster -p ckpt --all-targets -- -D warnings

echo "==> cargo doc (-D warnings): rustdoc must build clean"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

if [[ "${1:-}" == "quick" ]]; then
    echo "ci.sh: quick mode — skipping tier-1 build and tests"
    exit 0
fi

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> overhead bench (smoke): disabled-path regression guard"
cargo run --release -p hpo-bench --bin overhead_tracing -- smoke

echo "==> runtime throughput (smoke): tasks/sec regression gate"
cargo run --release -p hpo-bench --bin runtime_throughput -- smoke

echo "==> runtime throughput (net): loopback wire-protocol regression gate"
cargo run --release -p hpo-bench --bin runtime_throughput -- net_throughput

echo "==> checkpoint overhead (smoke): snapshot-cost regression gate"
cargo run --release -p hpo-bench --bin ckpt_overhead -- smoke

echo "==> stage-tree savings (smoke): exact epochs-saved regression gate"
# Deterministic planning counts (paper grid + eta-3 bracket) compared
# exactly against baselines/stagetree_savings.json: fails if the planner
# starts sharing less. Regenerate with `stagetree_savings rebaseline`
# after intentional signature/planner changes.
cargo run --release -p hpo-bench --bin stagetree_savings -- smoke

echo "==> block-cache smoke: shared dataset ships once per worker, not per trial"
# Loopback 2-worker sweep over a 32 KiB shared dataset: asserts worker
# cache hit-rate > 0, rnet_bytes_sent below the naive trials×dataset
# bound (and within 2×workers×dataset + control-plane slack), results
# bit-identical to the threaded backend, and block inputs re-fetching
# cleanly after a mid-run worker kill.
cargo test --release -p rcompss --test distributed -q -- block_plane killed_worker_block

echo "==> distributed loopback smoke: 2 workers, distributed == threaded"
SMOKE_DIR=$(mktemp -d)
WORKER_PIDS=()
cleanup() {
    for pid in "${WORKER_PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT
cat > "$SMOKE_DIR/space.json" <<'EOF'
{
  "optimizer": ["Adam", "SGD"],
  "num_epochs": [1, 2],
  "batch_size": [32]
}
EOF
./target/release/rcompss-worker --listen 127.0.0.1:7191 --name ci-w0 --samples 200 \
    --status-addr 127.0.0.1:7193 &
WORKER_PIDS+=($!)
./target/release/rcompss-worker --listen 127.0.0.1:7192 --name ci-w1 --samples 200 \
    --status-addr 127.0.0.1:7194 &
WORKER_PIDS+=($!)
sleep 1
./target/release/hpo-run --config "$SMOKE_DIR/space.json" --backend distributed \
    --workers 127.0.0.1:7191,127.0.0.1:7192 --samples 200 \
    --out "$SMOKE_DIR/distributed.csv"
./target/release/hpo-run --config "$SMOKE_DIR/space.json" --backend threaded \
    --samples 200 --out "$SMOKE_DIR/threaded.csv"
# Per-trial config + accuracy + epochs must match bit-for-bit; only the
# timing column may differ.
if ! diff <(sort "$SMOKE_DIR/distributed.csv" | cut -d, -f1-3) \
          <(sort "$SMOKE_DIR/threaded.csv" | cut -d, -f1-3); then
    echo "distributed loopback smoke FAILED: trial results diverge" >&2
    exit 1
fi
echo "distributed == threaded: trial tables identical"

echo "==> stage-tree smoke: --share-prefixes is bit-identical and saves epochs"
# Same grid again, this time prefix-deduped over the same two workers
# (their registries carry the stage task): the per-trial table must match
# the naive run byte-for-byte in the deterministic columns — same rows,
# same order — and the run's metrics exposition must report epochs saved.
./target/release/hpo-run --config "$SMOKE_DIR/space.json" --backend distributed \
    --workers 127.0.0.1:7191,127.0.0.1:7192 --samples 200 --share-prefixes \
    --out "$SMOKE_DIR/staged.csv" --metrics-out "$SMOKE_DIR/stage_metrics"
if ! diff <(cut -d, -f1-3 "$SMOKE_DIR/staged.csv") \
          <(cut -d, -f1-3 "$SMOKE_DIR/threaded.csv"); then
    echo "stage-tree smoke FAILED: --share-prefixes changed the trial table" >&2
    exit 1
fi
./target/release/prom-check < "$SMOKE_DIR/stage_metrics.prom"
SAVED=$(awk '$1 == "hpo_stage_epochs_saved_total" {print $2}' "$SMOKE_DIR/stage_metrics.prom")
if [ "${SAVED:-0}" -lt 1 ]; then
    echo "stage-tree smoke FAILED: hpo_stage_epochs_saved_total=${SAVED:-absent} after a shared sweep" >&2
    exit 1
fi
FORKS=$(awk '$1 == "hpo_prefix_forks_total" {print $2}' "$SMOKE_DIR/stage_metrics.prom")
echo "stage-tree smoke: staged == naive, $SAVED epochs saved across $FORKS forks"

echo "==> telemetry smoke: live /metrics scrape + merged-trace/trial diff"
# GET <path> from 127.0.0.1:<port> over bash's /dev/tcp, body on stdout.
scrape() {
    local port="$1" path="$2"
    exec 3<>"/dev/tcp/127.0.0.1/$port" || return 1
    printf 'GET %s HTTP/1.0\r\n\r\n' "$path" >&3
    sed '1,/^\r*$/d' <&3
    exec 3<&- 3>&-
}
# More epochs than the diff smoke: the run must outlive the first
# successful mid-flight scrape, and 1-2 epoch trials finish in ~0.1 s
# on a warm box — too fast for the retry loop to win the race.
cat > "$SMOKE_DIR/space_telemetry.json" <<'EOF'
{
  "optimizer": ["Adam", "SGD"],
  "num_epochs": [10, 20],
  "batch_size": [32]
}
EOF
./target/release/hpo-run --config "$SMOKE_DIR/space_telemetry.json" --backend distributed \
    --workers 127.0.0.1:7191,127.0.0.1:7192 --samples 200 \
    --status-addr 127.0.0.1:7195 --trace-out "$SMOKE_DIR/smoke.trace.json" \
    --out "$SMOKE_DIR/telemetry.csv" &
DRIVER_PID=$!
# Scrape the driver while the sweep is in flight: retry until the status
# endpoint answers (it exists only for the lifetime of the run).
DRIVER_METRICS=""
for _ in $(seq 1 200); do
    if DRIVER_METRICS=$(scrape 7195 /metrics 2>/dev/null) && [ -n "$DRIVER_METRICS" ]; then
        break
    fi
    if ! kill -0 "$DRIVER_PID" 2>/dev/null; then
        break
    fi
    sleep 0.05
done
if [ -z "$DRIVER_METRICS" ]; then
    echo "telemetry smoke FAILED: never scraped the driver /metrics mid-run" >&2
    exit 1
fi
[ "$(scrape 7195 /healthz 2>/dev/null || true)" = "ok" ] \
    || echo "note: /healthz raced the end of the run (non-fatal)"
echo "$DRIVER_METRICS" | ./target/release/prom-check
if ! echo "$DRIVER_METRICS" | grep -q 'rcompss_task_phase_us'; then
    echo "telemetry smoke FAILED: driver scrape lacks task_phase_us histograms" >&2
    exit 1
fi
wait "$DRIVER_PID"
# Worker daemons outlive the run: their endpoints must still answer with a
# valid exposition of worker-local counters.
WORKER_METRICS=$(scrape 7193 /metrics)
echo "$WORKER_METRICS" | ./target/release/prom-check
if ! echo "$WORKER_METRICS" | grep -q 'worker_tasks_executed_total'; then
    echo "telemetry smoke FAILED: worker scrape lacks worker_tasks_executed_total" >&2
    exit 1
fi
# Block-cache series are preregistered: present (if only at zero) on
# every worker scrape, so dashboards can rely on them.
if ! echo "$WORKER_METRICS" | grep -q 'rcompss_block_cache_hits_total'; then
    echo "telemetry smoke FAILED: worker scrape lacks block-cache series" >&2
    exit 1
fi
# The merged Chrome trace must hold exactly one execution span per trial
# in the CSV (4 grid points, no retries on a healthy loopback run).
SPANS=$(grep -c '"cat":"task"' "$SMOKE_DIR/smoke.trace.json")
TRIALS=$(($(wc -l < "$SMOKE_DIR/telemetry.csv") - 1))
if [ "$SPANS" -ne "$TRIALS" ]; then
    echo "telemetry smoke FAILED: $SPANS merged exec spans != $TRIALS journaled trials" >&2
    exit 1
fi
echo "telemetry smoke: scrapes valid, $SPANS exec spans == $TRIALS trials"

echo "==> sweep-server smoke: multi-tenant daemon, client CLI, /metrics"
# Long-lived rcompss-server owns the pool (two workers dial in), a tenant
# submits the same grid over the client CLI and streams the leaderboard to
# CSV. The served per-trial table must match the standalone threaded run
# bit-for-bit, and the scrape must expose a valid hposerver_ family.
./target/release/rcompss-server --listen 127.0.0.1:7296 --expect-workers 2 \
    --samples 200 --status-addr 127.0.0.1:7295 &
WORKER_PIDS+=($!)
./target/release/rcompss-worker --listen 127.0.0.1:7297 --name srv-w0 --samples 200 \
    --dial 127.0.0.1:7296 &
WORKER_PIDS+=($!)
./target/release/rcompss-worker --listen 127.0.0.1:7298 --name srv-w1 --samples 200 \
    --dial 127.0.0.1:7296 &
WORKER_PIDS+=($!)
# The pool forms (dial-ins are retried for up to 10s), then the status
# endpoint comes up: poll it as the readiness gate.
SERVER_UP=""
for _ in $(seq 1 400); do
    if SERVER_UP=$(scrape 7295 /metrics 2>/dev/null) && [ -n "$SERVER_UP" ]; then
        break
    fi
    sleep 0.05
done
if [ -z "$SERVER_UP" ]; then
    echo "sweep-server smoke FAILED: server never became ready" >&2
    exit 1
fi
./target/release/hpo-run submit --server 127.0.0.1:7296 --tenant ci \
    --config "$SMOKE_DIR/space.json" --name ci-sweep --algo grid \
    --out "$SMOKE_DIR/served.csv"
# Served leaderboard == standalone run: config, accuracy, epochs columns.
if ! diff <(sort "$SMOKE_DIR/served.csv" | cut -d, -f1-3) \
          <(sort "$SMOKE_DIR/threaded.csv" | cut -d, -f1-3); then
    echo "sweep-server smoke FAILED: served leaderboard diverges from standalone" >&2
    exit 1
fi
SERVER_METRICS=$(scrape 7295 /metrics)
echo "$SERVER_METRICS" | ./target/release/prom-check
for series in hposerver_sweeps_active hposerver_sweeps_queued \
              hposerver_sweeps_completed_total hposerver_sweeps_rejected_total; do
    if ! echo "$SERVER_METRICS" | grep -q "$series"; then
        echo "sweep-server smoke FAILED: scrape lacks $series" >&2
        exit 1
    fi
done
COMPLETED=$(echo "$SERVER_METRICS" | awk '$1 == "hposerver_sweeps_completed_total" {print $2}')
if [ "${COMPLETED:-0}" -lt 1 ]; then
    echo "sweep-server smoke FAILED: hposerver_sweeps_completed_total=$COMPLETED after a finished sweep" >&2
    exit 1
fi
echo "sweep-server smoke: served == standalone, $COMPLETED sweep(s) completed"

echo "ci.sh: all green"
